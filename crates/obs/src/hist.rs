//! Log-bucketed latency histogram with sound quantile bounds.
//!
//! Values 0–3 get exact buckets; every larger value lands in a
//! power-of-two decade split into 4 sub-buckets, so a bucket's width is
//! at most 25% of its lower bound. Quantiles are therefore reported as
//! *intervals* — the bucket bounds, tightened by the recorded min/max —
//! that are guaranteed to contain the true sample quantile. 252 buckets
//! cover the full `u64` range; recording is a few `Relaxed` atomic adds.

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 4 exact (0–3) plus 4 sub-buckets for each of the
/// 62 power-of-two decades `[2^b, 2^(b+1))`, `b = 2..=63`.
pub const BUCKET_COUNT: usize = 252;

/// The bucket index a value lands in.
pub fn bucket_index(value: u64) -> usize {
    if value < 4 {
        return value as usize;
    }
    let b = 63 - value.leading_zeros() as u64; // floor(log2(value)), >= 2
    let sub = (value >> (b - 2)) & 3; // top two bits below the leading one
    (4 * (b - 1) + sub) as usize
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
///
/// Every recorded value `v` satisfies
/// `bucket_bounds(bucket_index(v)).0 <= v <= bucket_bounds(bucket_index(v)).1`.
///
/// # Panics
///
/// Panics if `index >= BUCKET_COUNT`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index < 4 {
        return (index as u64, index as u64);
    }
    let b = (index as u64) / 4 + 1;
    let sub = (index as u64) % 4;
    let width = 1u64 << (b - 2);
    let lo = (1u64 << b) + sub * width;
    // The topmost bucket's hi is exactly u64::MAX; no overflow because
    // width - 1 is added, not width.
    (lo, lo + (width - 1))
}

/// A fixed-size, lock-free latency histogram.
///
/// All mutation is `Relaxed` atomics; concurrent recorders never lose
/// counts. Snapshot totals are derived from the bucket array itself, so
/// a snapshot taken mid-traffic is internally consistent (its `count`
/// equals the sum of its bucket counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: four `Relaxed` atomic RMWs.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded (sum of all bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Captures the current state. The snapshot's `count` is exactly
    /// the sum of its buckets; `sum`/`min`/`max` are read alongside and
    /// may trail concurrent recorders by a sample.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((index as u16, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Consecutive buckets abut: hi(i) + 1 == lo(i + 1).
        for i in 0..BUCKET_COUNT - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_width_is_bounded_relative_to_lo() {
        for i in 4..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            // Sub-bucketed decades: width <= lo / 4.
            assert!(hi - lo <= lo / 4, "bucket {i}: [{lo}, {hi}] too wide");
        }
    }

    #[test]
    fn every_value_falls_in_its_bucket_bounds() {
        let probes = [
            0,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            100,
            1_000,
            65_535,
            65_536,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 100, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 307);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // Only touched buckets appear.
        assert!(s.buckets.len() <= 3);
    }

    #[test]
    fn empty_histogram_snapshot_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max), (0, 0));
        assert!(s.quantile(0.5).is_none());
    }
}
