//! # at-obs — zero-dependency observability for the runtime
//!
//! The ROADMAP's perf tentpoles all start with *where does the time
//! go?* This crate is the measurement floor that question is answered
//! on: lock-free atomic [`Counter`]s and [`Gauge`]s, log-bucketed
//! latency [`Histogram`]s with *sound* quantile bounds (the reported
//! p50/p99/p999 are intervals guaranteed to contain the true sample
//! quantile, never a point estimate that could lie), and a per-node
//! [`Registry`] cheap enough to stay on in release benches.
//!
//! Everything is hand-rolled on `std::sync::atomic` — no crates.io
//! dependencies — and the hot recording path is a handful of `Relaxed`
//! atomic RMWs: no locks, no allocation, no branches on contended
//! state. Registration (name → handle resolution) takes a mutex once;
//! callers hold the returned `Arc` handles and record lock-free
//! thereafter. The [`Recorder`] bundles the pre-resolved [`Stage`]
//! histograms for the request path so instrumented code never touches
//! the registry map at runtime.
//!
//! # Metric naming scheme
//!
//! `<subsystem>_<what>[_<unit>]`, snake_case:
//!
//! * counters end in `_total` (`node_frames_in_total`);
//! * gauges carry the bare quantity (`engine_pending`);
//! * histograms end in their unit, microseconds throughout the stage
//!   spans (`stage_apply_us`).
//!
//! Stage-span histograms all share the `stage_` prefix and are
//! enumerated by [`Stage`], so a rendering of any node lines up
//! column-for-column with any other node.
//!
//! # Snapshots
//!
//! [`Registry::snapshot`] captures every metric into a plain
//! [`Snapshot`] value that implements the workspace codec
//! ([`at_model::codec::Encode`]/[`Decode`]) — that is what `at-node`
//! ships over the wire for `Client::stats()` — and
//! [`Registry::render`] (or [`Snapshot::render`]) formats it as the
//! text block `loadgen` and `chaos_soak` dump per node.
//!
//! # Tracing
//!
//! The [`trace`](crate::Tracer) layer complements the aggregate
//! histograms with causal per-transfer forensics: a sampling-gated
//! [`TraceCtx`] minted at gateway ingress rides the broadcast payload
//! across the cluster, every node records protocol-step
//! [`TraceEvent`]s into a lock-free ring, and [`merge_traces`] aligns
//! the scraped per-node [`TraceLog`]s on a shared epoch clock into
//! renderable per-transfer [`TraceTimeline`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod recorder;
mod registry;
mod snapshot;
mod trace;

pub use hist::{bucket_bounds, bucket_index, Histogram, BUCKET_COUNT};
pub use recorder::{Recorder, Stage, CLOCK_ANOMALY_THRESHOLD_US};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{HistogramSnapshot, MetricValue, NamedHistogram, Snapshot};
pub use trace::{
    merge_traces, TraceConfig, TraceCtx, TraceEvent, TraceEventKind, TraceLog, TraceTimeline,
    Tracer, TRACE_GAP_ANNOTATION_US,
};
