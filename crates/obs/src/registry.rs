//! The per-node metric [`Registry`]: named counters, gauges, and
//! histograms behind cheap shared handles.

use crate::hist::Histogram;
use crate::recorder::Recorder;
use crate::snapshot::{MetricValue, NamedHistogram, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count. Lock-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value. Lock-free.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    label: String,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A node's metric namespace. Cloning shares the underlying metrics.
///
/// Resolving a name takes a mutex; the returned `Arc` handle is held by
/// the instrumented code and recorded into lock-free, so steady-state
/// cost is independent of the registry. Names are registered on first
/// use — resolving the same name twice yields the same metric.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh registry labelled `label` (conventionally `node <i>`).
    pub fn new(label: impl Into<String>) -> Self {
        Registry {
            inner: Arc::new(Inner {
                label: label.into(),
                ..Inner::default()
            }),
        }
    }

    /// The registry's label.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The named counter, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The named gauge, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The named histogram, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A [`Recorder`] with every [`crate::Stage`] histogram
    /// pre-resolved for lock-free stage-span recording.
    pub fn recorder(&self) -> Recorder {
        Recorder::new(self.clone())
    }

    /// Captures every registered metric, name-sorted.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| MetricValue {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| MetricValue {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| NamedHistogram {
                name: name.clone(),
                hist: h.snapshot(),
            })
            .collect();
        Snapshot {
            label: self.inner.label.clone(),
            counters,
            gauges,
            histograms,
        }
    }

    /// [`Registry::snapshot`] rendered as text (see
    /// [`Snapshot::render`]).
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_to_shared_metrics() {
        let reg = Registry::new("node 0");
        reg.counter("a_total").add(2);
        reg.counter("a_total").inc();
        assert_eq!(reg.counter("a_total").get(), 3);
        reg.gauge("depth").set(7);
        reg.gauge("depth").set(5);
        assert_eq!(reg.gauge("depth").get(), 5);
        reg.histogram("lat_us").record(40);
        assert_eq!(reg.histogram("lat_us").count(), 1);
    }

    /// `render` must be a faithful, deterministically sorted projection
    /// of `snapshot`: every metric (the pre-registered `clock_anomalies`
    /// counter included) appears exactly once with its snapshot value,
    /// in name order, and two renders of a quiescent registry are
    /// byte-identical.
    #[test]
    fn render_is_consistent_with_snapshot_and_sorted() {
        let reg = Registry::new("node 3");
        // The recorder pre-registers clock_anomalies at construction, so
        // a rendered node always carries the anomaly counter, zero or
        // not.
        let recorder = reg.recorder();
        recorder.record_us(crate::Stage::Apply, 42);
        reg.counter("z_total").add(9);
        reg.counter("a_total").inc();
        reg.gauge("depth").set(4);

        let snap = reg.snapshot();
        let rendered = reg.render();
        assert_eq!(rendered, snap.render(), "render must project the snapshot");
        assert_eq!(rendered, reg.render(), "quiescent renders must be stable");
        assert!(
            rendered.contains("counter clock_anomalies 0"),
            "clock_anomalies missing:\n{rendered}"
        );

        // Every snapshot metric appears in the render with its value...
        for metric in snap.counters.iter().chain(snap.gauges.iter()) {
            assert!(
                rendered
                    .lines()
                    .any(|l| { l.ends_with(&format!("{} {}", metric.name, metric.value)) }),
                "metric {} not rendered",
                metric.name
            );
        }
        for hist in &snap.histograms {
            assert!(
                rendered
                    .lines()
                    .any(|l| l.starts_with(&format!("hist {}", hist.name))),
                "histogram {} not rendered",
                hist.name
            );
        }
        // ...and each section lists names in sorted order.
        for prefix in ["counter ", "gauge ", "hist "] {
            let names: Vec<&str> = rendered
                .lines()
                .filter_map(|l| l.strip_prefix(prefix))
                .filter_map(|l| l.split_whitespace().next())
                .collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "{prefix}section not name-sorted");
        }
    }

    #[test]
    fn clones_share_state_and_snapshots_sort_by_name() {
        let reg = Registry::new("node 1");
        let other = reg.clone();
        other.counter("z_total").inc();
        other.counter("a_total").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.label, "node 1");
        let names: Vec<&str> = snap.counters.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
        assert!(reg.render().contains("counter a_total 1"));
    }
}
