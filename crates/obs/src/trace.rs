//! Causal per-transfer tracing: the forensic complement to the
//! aggregate stage histograms.
//!
//! [`crate::Recorder`] answers "what does the p99 look like"; this
//! module answers "where did *that* transfer spend its 69 ms". A
//! compact [`TraceCtx`] (trace id + origin node + hop count) is minted
//! at gateway ingress — sampling-gated so the hot path keeps parity —
//! and carried through the broadcast payload on the wire. Every node
//! that touches a traced transfer records [`TraceEvent`]s (ingress,
//! batch-join, the protocol's send/echo/ready/deliver steps, the
//! certificate verify span, apply, ack) into a fixed-size lock-free
//! ring buffer ([`Tracer`]), each stamped in microseconds against a
//! cluster-shared epoch. Scraping every node's ring yields per-node
//! [`TraceLog`]s; [`merge_traces`] aligns them on that common clock and
//! reconstructs each transfer's message DAG as a renderable
//! [`TraceTimeline`].
//!
//! The ring is a per-slot seqlock built entirely from `AtomicU64`s (no
//! unsafe, no locks): writers claim a ticket with one `fetch_add`,
//! publish the slot odd/even, and never wait; readers retry torn slots.
//! A full ring evicts the oldest events and counts them in
//! [`TraceLog::dropped`] — tracing degrades by forgetting history, never
//! by blocking the protocol.

use at_model::codec::{Decode, Encode, Reader, Writer};
use at_model::CodecError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many low bits of a trace id hold the per-origin mint counter
/// (the bits above them hold the origin node id).
const TRACE_COUNTER_BITS: u32 = 40;

/// Slow-transfer credits armed by [`Tracer::mark_slow`]: once the
/// gateway observes an end-to-end time over the threshold, the next
/// this-many ingresses are traced unconditionally, so the tail that
/// exceeded the histogram bound is captured even between samples.
const SLOW_CREDITS: u64 = 32;

/// Consecutive-event spacing beyond which a rendered timeline annotates
/// a gap (a crash window, a partition, a stalled link — anything that
/// left the transfer waiting).
pub const TRACE_GAP_ANNOTATION_US: u64 = 10_000;

/// The compact causal context a traced transfer carries on the wire:
/// 13 encoded bytes riding the broadcast payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Cluster-unique trace id: `origin << 40 | mint counter`.
    pub id: u64,
    /// The node whose gateway minted the context.
    pub origin: u32,
    /// Hops the context has taken from the origin (incremented at each
    /// receipt from a different process).
    pub hops: u8,
}

impl TraceCtx {
    /// The context one hop further from the origin.
    #[must_use]
    pub fn hopped(self) -> TraceCtx {
        TraceCtx {
            hops: self.hops.saturating_add(1),
            ..self
        }
    }

    /// The origin node encoded in a bare trace id.
    pub fn origin_of(id: u64) -> u32 {
        (id >> TRACE_COUNTER_BITS) as u32
    }
}

impl Encode for TraceCtx {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u32(self.origin);
        w.put_u8(self.hops);
    }
}

impl Decode for TraceCtx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TraceCtx {
            id: r.take_u64()?,
            origin: r.take_u32()?,
            hops: r.take_u8()?,
        })
    }
}

/// A protocol step a traced transfer passed through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// The gateway read the client request off the socket.
    Ingress = 0,
    /// The transfer joined a replica batch that already carried (or now
    /// carries) the trace context.
    BatchJoin = 1,
    /// The backend sent the initial broadcast round for the batch.
    Send = 2,
    /// The backend emitted its echo/ack round for the batch.
    Echo = 3,
    /// The backend reached its quorum round (READY / FINAL certificate).
    Ready = 4,
    /// The backend delivered the batch to the replica.
    Deliver = 5,
    /// Certificate verification began.
    VerifyStart = 6,
    /// Certificate verification finished.
    VerifyEnd = 7,
    /// The replica applied the transfer to the ledger.
    Apply = 8,
    /// The node acknowledged the client (arg = end-to-end µs).
    Ack = 9,
}

impl TraceEventKind {
    /// All kinds, in protocol order.
    pub const ALL: [TraceEventKind; 10] = [
        TraceEventKind::Ingress,
        TraceEventKind::BatchJoin,
        TraceEventKind::Send,
        TraceEventKind::Echo,
        TraceEventKind::Ready,
        TraceEventKind::Deliver,
        TraceEventKind::VerifyStart,
        TraceEventKind::VerifyEnd,
        TraceEventKind::Apply,
        TraceEventKind::Ack,
    ];

    /// The timeline label.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::Ingress => "ingress",
            TraceEventKind::BatchJoin => "batch-join",
            TraceEventKind::Send => "send",
            TraceEventKind::Echo => "echo",
            TraceEventKind::Ready => "ready",
            TraceEventKind::Deliver => "deliver",
            TraceEventKind::VerifyStart => "verify-start",
            TraceEventKind::VerifyEnd => "verify-end",
            TraceEventKind::Apply => "apply",
            TraceEventKind::Ack => "ack",
        }
    }

    fn from_u8(v: u8) -> Option<TraceEventKind> {
        TraceEventKind::ALL.get(v as usize).copied()
    }
}

/// One recorded protocol step of one traced transfer on one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace_id: u64,
    /// Microseconds since the cluster-shared epoch.
    pub at_us: u64,
    /// The node that recorded the event.
    pub node: u32,
    /// Which protocol step.
    pub kind: TraceEventKind,
    /// Hop count of the context at the event.
    pub hops: u8,
    /// Step-specific argument (e.g. batch size for `BatchJoin`,
    /// certificate shares for the verify span, end-to-end µs for `Ack`).
    pub arg: u64,
}

impl Encode for TraceEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.trace_id);
        w.put_u64(self.at_us);
        w.put_u32(self.node);
        w.put_u8(self.kind as u8);
        w.put_u8(self.hops);
        w.put_u64(self.arg);
    }
}

impl Decode for TraceEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let trace_id = r.take_u64()?;
        let at_us = r.take_u64()?;
        let node = r.take_u32()?;
        let kind_byte = r.take_u8()?;
        let kind = TraceEventKind::from_u8(kind_byte).ok_or(CodecError::InvalidTag {
            type_name: "TraceEventKind",
            tag: kind_byte,
        })?;
        Ok(TraceEvent {
            trace_id,
            at_us,
            node,
            kind,
            hops: r.take_u8()?,
            arg: r.take_u64()?,
        })
    }
}

/// One node's scraped trace ring: the events still resident, plus how
/// many older ones the ring evicted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// The node the ring belongs to.
    pub node: u32,
    /// Resident events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events evicted by ring wrap-around before this scrape.
    pub dropped: u64,
}

impl Encode for TraceLog {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.node);
        w.put_u64(self.events.len() as u64);
        for event in &self.events {
            event.encode(w);
        }
        w.put_u64(self.dropped);
    }
}

impl Decode for TraceLog {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let node = r.take_u32()?;
        let len = r.take_seq_len()?;
        // Untrusted input: never allocate proportional to a declared
        // length the bytes cannot back.
        let mut events = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            events.push(TraceEvent::decode(r)?);
        }
        Ok(TraceLog {
            node,
            events,
            dropped: r.take_u64()?,
        })
    }
}

/// Shape of a node's tracing plane: sampling policy, ring capacity, and
/// the cluster-shared epoch every event timestamp counts from.
///
/// `Copy`, so it embeds in node configs and survives a warm restart
/// unchanged — a restarted incarnation keeps stamping against the same
/// epoch, which is what lets [`merge_traces`] align a transfer that
/// spans the crash.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Trace one in this many gateway ingresses (0 disables sampling;
    /// 1 traces everything).
    pub sample_every: u32,
    /// End-to-end µs beyond which the gateway marks the transfer slow
    /// and arms always-on tracing for the next ingresses.
    pub slow_threshold_us: u64,
    /// Ring capacity in events (rounded up to a power of two).
    pub capacity: usize,
    /// The cluster-shared clock origin.
    pub epoch: Instant,
}

impl TraceConfig {
    /// The default sampling shape: 1-in-64 plus the slow-transfer gate,
    /// with a 4096-event ring.
    pub fn sampled() -> TraceConfig {
        TraceConfig {
            sample_every: 64,
            slow_threshold_us: 20_000,
            capacity: 4096,
            epoch: Instant::now(),
        }
    }

    /// Trace every transfer (chaos forensics; not for throughput runs).
    pub fn always() -> TraceConfig {
        TraceConfig {
            sample_every: 1,
            ..TraceConfig::sampled()
        }
    }
}

/// One seqlock-guarded ring slot. `seq` is odd while a writer owns the
/// slot and `2 * ticket + 2` once the event at `ticket` is published;
/// readers accept a slot only when `seq` reads even, nonzero, and
/// identical before and after the payload words.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

struct TracerInner {
    node: u32,
    epoch: Instant,
    sample_every: u32,
    slow_threshold_us: u64,
    /// Next write ticket; `ticket % slots.len()` is the slot index.
    head: AtomicU64,
    slots: Vec<Slot>,
    /// Gateway mint counter (also the low bits of minted ids).
    minted: AtomicU64,
    /// Remaining always-on ingresses armed by a slow transfer.
    slow_credits: AtomicU64,
}

/// The per-node trace recorder: a cloneable handle over the lock-free
/// event ring. Recording is wait-free for writers (one `fetch_add` plus
/// six relaxed stores); [`Tracer::log`] snapshots the resident events
/// without stopping them.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer for `node` with the given sampling/ring shape.
    pub fn new(node: u32, config: TraceConfig) -> Tracer {
        let capacity = config.capacity.max(2).next_power_of_two();
        Tracer {
            inner: Arc::new(TracerInner {
                node,
                epoch: config.epoch,
                sample_every: config.sample_every,
                slow_threshold_us: config.slow_threshold_us,
                head: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
                minted: AtomicU64::new(0),
                slow_credits: AtomicU64::new(0),
            }),
        }
    }

    /// The node this tracer records for.
    pub fn node(&self) -> u32 {
        self.inner.node
    }

    /// The end-to-end threshold beyond which the gateway should call
    /// [`Tracer::mark_slow`].
    pub fn slow_threshold_us(&self) -> u64 {
        self.inner.slow_threshold_us
    }

    /// Microseconds since the cluster-shared epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Sampling gate at gateway ingress: mints a fresh [`TraceCtx`] for
    /// one in `sample_every` transfers, or unconditionally while
    /// slow-transfer credits are armed. Returns `None` for transfers
    /// that ride untraced.
    pub fn maybe_mint(&self) -> Option<TraceCtx> {
        let k = self.inner.minted.fetch_add(1, Ordering::Relaxed);
        let sampled =
            self.inner.sample_every != 0 && k.is_multiple_of(u64::from(self.inner.sample_every));
        let slow = !sampled
            && self
                .inner
                .slow_credits
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |credits| {
                    credits.checked_sub(1)
                })
                .is_ok();
        if !(sampled || slow) {
            return None;
        }
        Some(TraceCtx {
            id: (u64::from(self.inner.node) << TRACE_COUNTER_BITS)
                | (k & ((1 << TRACE_COUNTER_BITS) - 1)),
            origin: self.inner.node,
            hops: 0,
        })
    }

    /// Arms [`SLOW_CREDITS`] always-on ingresses; the gateway calls this
    /// when a completed transfer's end-to-end time exceeded
    /// [`TraceConfig::slow_threshold_us`], so the regime that produced
    /// the outlier is captured in full.
    pub fn mark_slow(&self) {
        self.inner
            .slow_credits
            .store(SLOW_CREDITS, Ordering::Relaxed);
    }

    /// Records one protocol-step event for `ctx` (wait-free; evicts the
    /// oldest event when the ring is full).
    pub fn record(&self, ctx: TraceCtx, kind: TraceEventKind, arg: u64) {
        self.record_at(ctx, kind, arg, self.now_us());
    }

    /// [`Tracer::record`] with an explicit timestamp (tests and spans
    /// whose start was stamped earlier).
    pub fn record_at(&self, ctx: TraceCtx, kind: TraceEventKind, arg: u64, at_us: u64) {
        let inner = &self.inner;
        let ticket = inner.head.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(ticket as usize) & (inner.slots.len() - 1)];
        // Seqlock write: odd while in flight, even (and ticket-tagged)
        // once published. A reader that raced us sees a seq mismatch
        // and discards the slot.
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.words[0].store(ctx.id, Ordering::Relaxed);
        slot.words[1].store(at_us, Ordering::Relaxed);
        slot.words[2].store(
            u64::from(inner.node) | (u64::from(kind as u8) << 32) | (u64::from(ctx.hops) << 40),
            Ordering::Relaxed,
        );
        slot.words[3].store(arg, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Snapshots the resident events as a wire-codable [`TraceLog`]
    /// (sorted by timestamp), counting ring-evicted events as dropped.
    pub fn log(&self) -> TraceLog {
        let inner = &self.inner;
        let head = inner.head.load(Ordering::Acquire);
        let capacity = inner.slots.len() as u64;
        let mut events = Vec::new();
        for slot in &inner.slots {
            // Retry torn reads a few times; a slot rewritten mid-read
            // more times than that is being overwritten so fast its
            // event is effectively evicted anyway.
            for _ in 0..4 {
                let seq1 = slot.seq.load(Ordering::Acquire);
                if seq1 == 0 || seq1 % 2 == 1 {
                    break; // never written, or write in flight
                }
                let words = [
                    slot.words[0].load(Ordering::Relaxed),
                    slot.words[1].load(Ordering::Relaxed),
                    slot.words[2].load(Ordering::Relaxed),
                    slot.words[3].load(Ordering::Relaxed),
                ];
                let seq2 = slot.seq.load(Ordering::Acquire);
                if seq1 != seq2 {
                    continue; // torn: a writer landed mid-read
                }
                let kind = TraceEventKind::from_u8(((words[2] >> 32) & 0xFF) as u8)
                    .expect("ring slots only ever hold valid kinds");
                events.push(TraceEvent {
                    trace_id: words[0],
                    at_us: words[1],
                    node: (words[2] & 0xFFFF_FFFF) as u32,
                    kind,
                    hops: ((words[2] >> 40) & 0xFF) as u8,
                    arg: words[3],
                });
                break;
            }
        }
        events.sort_by_key(|e| (e.at_us, e.kind));
        TraceLog {
            node: inner.node,
            events,
            dropped: head.saturating_sub(capacity),
        }
    }
}

/// One transfer's merged, cluster-wide timeline: every node's events
/// for one trace id, aligned on the shared epoch clock.
#[derive(Clone, Debug)]
pub struct TraceTimeline {
    /// The trace id.
    pub id: u64,
    /// The node whose gateway minted the trace.
    pub origin: u32,
    /// Events from every scraped node, sorted by `(at_us, node, kind)`.
    pub events: Vec<TraceEvent>,
    /// End-to-end µs, read from the `Ack` event (the same value the
    /// origin node fed the `stage_e2e_us` histogram).
    pub e2e_us: Option<u64>,
    /// True when the timeline lacks its `Ingress` or `Ack` endpoint —
    /// an undelivered transfer, or one whose edges were ring-evicted.
    pub incomplete: bool,
}

impl TraceTimeline {
    /// The timeline as indented text: one header, then one line per
    /// event with microseconds relative to the first, annotating gaps
    /// longer than [`TRACE_GAP_ANNOTATION_US`] (crash windows,
    /// partitions) and missing endpoints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "trace {:#x} origin n{} events {}",
            self.id,
            self.origin,
            self.events.len()
        );
        if let Some(e2e) = self.e2e_us {
            let _ = write!(out, " e2e {e2e}µs");
        }
        if self.incomplete {
            out.push_str(" INCOMPLETE");
        }
        out.push('\n');
        let base = self.events.first().map_or(0, |e| e.at_us);
        let mut prev = base;
        for event in &self.events {
            let _ = write!(
                out,
                "  +{:>8}µs n{} {:<12} hops={}",
                event.at_us - base,
                event.node,
                event.kind.label(),
                event.hops
            );
            if event.arg != 0 {
                let _ = write!(out, " arg={}", event.arg);
            }
            let delta = event.at_us.saturating_sub(prev);
            if delta > TRACE_GAP_ANNOTATION_US {
                let _ = write!(out, "  <-- gap {delta}µs");
            }
            prev = event.at_us;
            out.push('\n');
        }
        out
    }
}

/// Merges per-node [`TraceLog`]s into per-transfer timelines: groups
/// every scraped event by trace id, sorts each group on the shared
/// epoch clock (per-node streams may arrive in any order), and flags
/// timelines whose `Ingress`/`Ack` endpoints are missing. Timelines are
/// returned sorted by trace id.
pub fn merge_traces(logs: &[TraceLog]) -> Vec<TraceTimeline> {
    let mut by_id: std::collections::BTreeMap<u64, Vec<TraceEvent>> =
        std::collections::BTreeMap::new();
    for log in logs {
        for event in &log.events {
            by_id.entry(event.trace_id).or_default().push(*event);
        }
    }
    by_id
        .into_iter()
        .map(|(id, mut events)| {
            events.sort_by_key(|e| (e.at_us, e.node, e.kind));
            events.dedup();
            let e2e_us = events
                .iter()
                .rev()
                .find(|e| e.kind == TraceEventKind::Ack)
                .map(|e| e.arg);
            let incomplete =
                !events.iter().any(|e| e.kind == TraceEventKind::Ingress) || e2e_us.is_none();
            TraceTimeline {
                id,
                origin: TraceCtx::origin_of(id),
                events,
                e2e_us,
                incomplete,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_model::codec::{decode, encode};

    fn test_config(capacity: usize, sample_every: u32) -> TraceConfig {
        TraceConfig {
            sample_every,
            slow_threshold_us: 1_000,
            capacity,
            epoch: Instant::now(),
        }
    }

    fn ctx(id: u64) -> TraceCtx {
        TraceCtx {
            id,
            origin: TraceCtx::origin_of(id),
            hops: 0,
        }
    }

    #[test]
    fn ctx_and_events_roundtrip_the_codec() {
        let c = TraceCtx {
            id: (3u64 << 40) | 77,
            origin: 3,
            hops: 2,
        };
        assert_eq!(decode::<TraceCtx>(&encode(&c)).unwrap(), c);
        assert_eq!(TraceCtx::origin_of(c.id), 3);

        let log = TraceLog {
            node: 1,
            events: vec![TraceEvent {
                trace_id: c.id,
                at_us: 123,
                node: 1,
                kind: TraceEventKind::Deliver,
                hops: 1,
                arg: 4,
            }],
            dropped: 9,
        };
        assert_eq!(decode::<TraceLog>(&encode(&log)).unwrap(), log);
    }

    #[test]
    fn bogus_event_kind_is_rejected_not_panicked() {
        let mut bytes = encode(&TraceEvent {
            trace_id: 1,
            at_us: 2,
            node: 3,
            kind: TraceEventKind::Ack,
            hops: 0,
            arg: 0,
        });
        // kind byte sits after trace_id (8) + at_us (8) + node (4).
        bytes[20] = 0xEE;
        assert!(decode::<TraceEvent>(&bytes).is_err());
    }

    #[test]
    fn sampling_mints_one_in_n_plus_slow_credits() {
        let tracer = Tracer::new(0, test_config(64, 4));
        let minted: Vec<bool> = (0..8).map(|_| tracer.maybe_mint().is_some()).collect();
        assert_eq!(
            minted,
            [true, false, false, false, true, false, false, false]
        );
        tracer.mark_slow();
        // Every ingress traced while the slow credits last.
        assert!((0..8).all(|_| tracer.maybe_mint().is_some()));
        // Distinct ids even across the sampled/slow regimes.
        let a = Tracer::new(2, test_config(64, 1));
        let first = a.maybe_mint().unwrap();
        let second = a.maybe_mint().unwrap();
        assert_ne!(first.id, second.id);
        assert_eq!(first.origin, 2);
        assert_eq!(TraceCtx::origin_of(second.id), 2);
    }

    #[test]
    fn disabled_sampling_mints_nothing() {
        let tracer = Tracer::new(0, test_config(64, 0));
        assert!((0..32).all(|_| tracer.maybe_mint().is_none()));
        tracer.mark_slow();
        assert!(tracer.maybe_mint().is_some(), "slow gate works regardless");
    }

    #[test]
    fn ring_keeps_newest_events_and_counts_evictions() {
        let tracer = Tracer::new(0, test_config(8, 1));
        for i in 0..20u64 {
            tracer.record_at(ctx(1), TraceEventKind::Echo, i, i);
        }
        let log = tracer.log();
        assert_eq!(log.events.len(), 8);
        assert_eq!(log.dropped, 12);
        // Eviction is strictly oldest-first: the survivors are the tail.
        let args: Vec<u64> = log.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_recording_never_tears() {
        let tracer = Tracer::new(0, test_config(256, 1));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Per-writer invariant: arg == at_us == i, and the
                        // id tags the writer — torn slots would mix them.
                        tracer.record_at(ctx(t + 1), TraceEventKind::Apply, i, i);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for event in tracer.log().events {
                assert_eq!(event.arg, event.at_us, "torn slot escaped the seqlock");
                assert!((1..=4).contains(&event.trace_id));
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let final_log = tracer.log();
        assert_eq!(final_log.events.len(), 256);
        assert_eq!(final_log.dropped, 4 * 2_000 - 256);
    }

    #[test]
    fn merger_aligns_out_of_order_streams() {
        let id = (1u64 << 40) | 5;
        // Node 2's scrape arrives first and its events are shuffled.
        let node2 = TraceLog {
            node: 2,
            events: vec![
                TraceEvent {
                    trace_id: id,
                    at_us: 300,
                    node: 2,
                    kind: TraceEventKind::Deliver,
                    hops: 1,
                    arg: 0,
                },
                TraceEvent {
                    trace_id: id,
                    at_us: 150,
                    node: 2,
                    kind: TraceEventKind::Echo,
                    hops: 1,
                    arg: 0,
                },
            ],
            dropped: 0,
        };
        let node1 = TraceLog {
            node: 1,
            events: vec![
                TraceEvent {
                    trace_id: id,
                    at_us: 100,
                    node: 1,
                    kind: TraceEventKind::Ingress,
                    hops: 0,
                    arg: 0,
                },
                TraceEvent {
                    trace_id: id,
                    at_us: 400,
                    node: 1,
                    kind: TraceEventKind::Ack,
                    hops: 0,
                    arg: 300,
                },
            ],
            dropped: 0,
        };
        let timelines = merge_traces(&[node2, node1]);
        assert_eq!(timelines.len(), 1);
        let t = &timelines[0];
        assert_eq!(t.id, id);
        assert_eq!(t.origin, 1);
        assert!(!t.incomplete);
        assert_eq!(t.e2e_us, Some(300));
        let order: Vec<u64> = t.events.iter().map(|e| e.at_us).collect();
        assert_eq!(
            order,
            [100, 150, 300, 400],
            "not aligned on the epoch clock"
        );
    }

    #[test]
    fn merger_flags_missing_endpoints_and_renders_gaps() {
        let id = (2u64 << 40) | 9;
        // No Ack: the transfer never completed (or its ack was evicted),
        // and a 50ms hole sits mid-timeline — a crash window.
        let log = TraceLog {
            node: 2,
            events: vec![
                TraceEvent {
                    trace_id: id,
                    at_us: 0,
                    node: 2,
                    kind: TraceEventKind::Ingress,
                    hops: 0,
                    arg: 0,
                },
                TraceEvent {
                    trace_id: id,
                    at_us: 50_000,
                    node: 2,
                    kind: TraceEventKind::Send,
                    hops: 0,
                    arg: 0,
                },
            ],
            dropped: 0,
        };
        let timelines = merge_traces(&[log]);
        let t = &timelines[0];
        assert!(t.incomplete);
        assert_eq!(t.e2e_us, None);
        let rendered = t.render();
        assert!(rendered.contains("INCOMPLETE"), "{rendered}");
        assert!(rendered.contains("gap 50000µs"), "{rendered}");
        assert!(rendered.contains("ingress"), "{rendered}");
    }

    #[test]
    fn renders_complete_timelines_without_noise() {
        let tracer = Tracer::new(0, test_config(64, 1));
        let c = tracer.maybe_mint().unwrap();
        tracer.record_at(c, TraceEventKind::Ingress, 0, 10);
        tracer.record_at(c, TraceEventKind::Apply, 0, 20);
        tracer.record_at(c, TraceEventKind::Ack, 15, 25);
        let timelines = merge_traces(&[tracer.log()]);
        let rendered = timelines[0].render();
        assert!(!rendered.contains("INCOMPLETE"), "{rendered}");
        assert!(!rendered.contains("gap"), "{rendered}");
        assert!(rendered.contains("e2e 15µs"), "{rendered}");
    }
}
