//! Point-in-time metric snapshots: plain values, wire-codable with the
//! workspace codec, renderable as text.

use crate::hist::bucket_bounds;
use at_model::codec::{Decode, Encode, Reader, Writer};
use at_model::CodecError;
use std::fmt::Write as _;

/// A captured histogram: derived totals plus the non-zero buckets in
/// index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples (always equals the sum of `buckets` counts).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Sound bounds `[lo, hi]` on the `q`-quantile sample (`0 < q <= 1`):
    /// the true quantile of the recorded stream is guaranteed to lie in
    /// the returned interval. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= target {
                let (lo, hi) = bucket_bounds(index as usize);
                // The recorded min/max tighten the bucket bounds — and
                // keep quantiles of a one-bucket stream exact.
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        // count is derived from buckets, so the walk always reaches it.
        unreachable!("quantile target beyond bucket totals")
    }

    /// Upper bound of the `q`-quantile (0 when empty) — the headline
    /// number tables print, sound in the "at most" direction.
    pub fn quantile_hi(&self, q: f64) -> u64 {
        self.quantile(q).map_or(0, |(_, hi)| hi)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self` bucket-by-bucket — the cross-node merge
    /// behind cluster-wide latency tables. Quantile bounds of the merge
    /// are as sound as of any single snapshot (buckets simply add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, an)), Some(&&(bi, bn))) => {
                    if ai < bi {
                        merged.push((ai, an));
                        a.next();
                    } else if bi < ai {
                        merged.push((bi, bn));
                        b.next();
                    } else {
                        merged.push((ai, an + bn));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

impl Encode for HistogramSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.count.encode(w);
        self.sum.encode(w);
        self.min.encode(w);
        self.max.encode(w);
        w.put_u64(self.buckets.len() as u64);
        for &(index, n) in &self.buckets {
            index.encode(w);
            n.encode(w);
        }
    }
}

impl Decode for HistogramSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = u64::decode(r)?;
        let sum = u64::decode(r)?;
        let min = u64::decode(r)?;
        let max = u64::decode(r)?;
        let len = r.take_seq_len()?;
        let mut buckets = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            buckets.push((u16::decode(r)?, u64::decode(r)?));
        }
        Ok(HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

/// One named scalar metric (counter or gauge) in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricValue {
    /// The metric name.
    pub name: String,
    /// The value at capture time.
    pub value: u64,
}

impl Encode for MetricValue {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.value.encode(w);
    }
}

impl Decode for MetricValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MetricValue {
            name: String::decode(r)?,
            value: u64::decode(r)?,
        })
    }
}

/// One named histogram in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedHistogram {
    /// The metric name.
    pub name: String,
    /// The captured histogram.
    pub hist: HistogramSnapshot,
}

impl Encode for NamedHistogram {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.hist.encode(w);
    }
}

impl Decode for NamedHistogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NamedHistogram {
            name: String::decode(r)?,
            hist: HistogramSnapshot::decode(r)?,
        })
    }
}

/// Everything a [`crate::Registry`] held at one instant. Name-sorted,
/// wire-codable (this is the payload of `at-node`'s `StatsResponse`
/// frame), and renderable as text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The registry label (conventionally `node <i>`).
    pub label: String,
    /// All counters, ascending by name.
    pub counters: Vec<MetricValue>,
    /// All gauges, ascending by name.
    pub gauges: Vec<MetricValue>,
    /// All histograms, ascending by name.
    pub histograms: Vec<NamedHistogram>,
}

impl Snapshot {
    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// The named gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.hist)
    }

    /// Renders the snapshot as the text block benches and chaos dumps
    /// ship: one `counter`/`gauge` line per scalar, one `hist` line per
    /// histogram with count/mean/min/max and upper quantile bounds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.label);
        for m in &self.counters {
            let _ = writeln!(out, "counter {} {}", m.name, m.value);
        }
        for m in &self.gauges {
            let _ = writeln!(out, "gauge {} {}", m.name, m.value);
        }
        for h in &self.histograms {
            let s = &h.hist;
            let _ = writeln!(
                out,
                "hist {} count={} mean={} min={} max={} p50<={} p99<={} p999<={}",
                h.name,
                s.count,
                s.mean(),
                s.min,
                s.max,
                s.quantile_hi(0.50),
                s.quantile_hi(0.99),
                s.quantile_hi(0.999),
            );
        }
        out
    }
}

impl Encode for Snapshot {
    fn encode(&self, w: &mut Writer) {
        self.label.encode(w);
        self.counters.encode(w);
        self.gauges.encode(w);
        self.histograms.encode(w);
    }
}

impl Decode for Snapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Snapshot {
            label: String::decode(r)?,
            counters: Vec::decode(r)?,
            gauges: Vec::decode(r)?,
            histograms: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use at_model::codec::{decode, encode};

    fn sample_snapshot() -> Snapshot {
        let h = Histogram::new();
        for v in [3u64, 17, 17, 90, 1000] {
            h.record(v);
        }
        Snapshot {
            label: "node 2".into(),
            counters: vec![MetricValue {
                name: "node_frames_in_total".into(),
                value: 41,
            }],
            gauges: vec![MetricValue {
                name: "engine_pending".into(),
                value: 3,
            }],
            histograms: vec![NamedHistogram {
                name: "stage_apply_us".into(),
                hist: h.snapshot(),
            }],
        }
    }

    #[test]
    fn snapshot_roundtrips_through_the_codec() {
        let snap = sample_snapshot();
        let bytes = encode(&snap);
        assert_eq!(decode::<Snapshot>(&bytes).expect("roundtrip"), snap);
    }

    #[test]
    fn snapshot_decode_is_total_on_garbage() {
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = decode::<Snapshot>(&bytes);
        }
    }

    #[test]
    fn lookups_and_render_cover_every_section() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("node_frames_in_total"), Some(41));
        assert_eq!(snap.gauge("engine_pending"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        let hist = snap.histogram("stage_apply_us").expect("present");
        assert_eq!(hist.count, 5);
        let text = snap.render();
        assert!(text.contains("# node 2"));
        assert!(text.contains("counter node_frames_in_total 41"));
        assert!(text.contains("gauge engine_pending 3"));
        assert!(text.contains("hist stage_apply_us count=5"));
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 40, 40, 900, 1_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 40, 77_777] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // Merging with / into an empty snapshot is identity.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&merged);
        assert_eq!(empty, all.snapshot());
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn quantile_bounds_are_ordered_and_contain_the_samples() {
        let h = Histogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919).collect();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99, 0.999] {
            let (lo, hi) = snap.quantile(q).expect("non-empty");
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let true_q = sorted[rank - 1];
            assert!(
                lo <= true_q && true_q <= hi,
                "q={q}: {true_q} not in [{lo}, {hi}]"
            );
        }
        assert!(snap.quantile_hi(0.5) <= snap.quantile_hi(0.99));
        assert!(snap.quantile_hi(0.99) <= snap.quantile_hi(0.999));
        assert!(snap.quantile_hi(0.999) <= snap.max);
    }
}
