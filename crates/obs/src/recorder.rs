//! The [`Recorder`]: pre-resolved stage-span histograms threaded
//! through the runtime's request path.

use crate::hist::Histogram;
use crate::registry::{Counter, Registry};
use std::sync::Arc;
use std::time::Duration;

/// The stages of the request path, in path order: gateway ingress →
/// batch-timer flush → broadcast round-trip → wire encode/decode →
/// signature sign/verify → replica apply → client ack, plus the
/// end-to-end envelope. Each stage owns one `stage_<name>_us` histogram
/// in the node's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Client request received by the gateway until the node loop picks
    /// it up.
    Gateway,
    /// Transfer admitted until its batch is flushed to the backend.
    Batch,
    /// Own batch broadcast until the backend delivers it back locally
    /// (the full broadcast round-trip, quorum included).
    Broadcast,
    /// Encoding outgoing backend messages into wire payloads.
    WireEncode,
    /// Decoding inbound wire payloads into backend messages.
    WireDecode,
    /// One authenticator signing operation.
    Sign,
    /// One authenticator verification (per-share on the echo path).
    Verify,
    /// Draining delivered batches through the sharded replica.
    Apply,
    /// Replica completion until the acknowledgement is queued to the
    /// client.
    Ack,
    /// Gateway ingress until the acknowledgement is queued (the whole
    /// request path).
    EndToEnd,
    /// Cold catch-up: snapshot fetch begun until the restored replica is
    /// serving (off the request path — samples only on bootstrap).
    CatchUp,
}

impl Stage {
    /// Every stage, in path order.
    pub const ALL: [Stage; 11] = [
        Stage::Gateway,
        Stage::Batch,
        Stage::Broadcast,
        Stage::WireEncode,
        Stage::WireDecode,
        Stage::Sign,
        Stage::Verify,
        Stage::Apply,
        Stage::Ack,
        Stage::EndToEnd,
        Stage::CatchUp,
    ];

    /// The stage's histogram name in the registry.
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::Gateway => "stage_gateway_us",
            Stage::Batch => "stage_batch_us",
            Stage::Broadcast => "stage_broadcast_us",
            Stage::WireEncode => "stage_wire_encode_us",
            Stage::WireDecode => "stage_wire_decode_us",
            Stage::Sign => "stage_sign_us",
            Stage::Verify => "stage_verify_us",
            Stage::Apply => "stage_apply_us",
            Stage::Ack => "stage_ack_us",
            Stage::EndToEnd => "stage_e2e_us",
            Stage::CatchUp => "stage_catchup_us",
        }
    }

    /// A short human label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Gateway => "gateway",
            Stage::Batch => "batch",
            Stage::Broadcast => "broadcast",
            Stage::WireEncode => "wire-enc",
            Stage::WireDecode => "wire-dec",
            Stage::Sign => "sign",
            Stage::Verify => "verify",
            Stage::Apply => "apply",
            Stage::Ack => "ack",
            Stage::EndToEnd => "e2e",
            Stage::CatchUp => "catch-up",
        }
    }
}

/// A cheap, cloneable handle for recording stage latencies: all
/// [`Stage`] histograms are resolved once at construction, so the hot
/// path is a direct lock-free histogram record. Clones share the
/// underlying registry.
#[derive(Clone, Debug)]
pub struct Recorder {
    registry: Registry,
    stages: [Arc<Histogram>; Stage::ALL.len()],
    clock_anomalies: Arc<Counter>,
}

/// Stage spans above this are clock artifacts, not latency: no stage of
/// the request path legitimately runs for a minute, but a stepped or
/// virtualized wall clock (VM pause, NTP slew, suspend/resume) can make
/// `elapsed` report hours. Such samples would permanently poison the
/// histogram max and upper quantiles, so they are counted in
/// `clock_anomalies` and dropped instead.
pub const CLOCK_ANOMALY_THRESHOLD_US: u64 = 60_000_000;

impl Recorder {
    /// A recorder over `registry` (also via [`Registry::recorder`]).
    pub fn new(registry: Registry) -> Self {
        let stages = Stage::ALL.map(|s| registry.histogram(s.metric_name()));
        let clock_anomalies = registry.counter("clock_anomalies");
        Recorder {
            registry,
            stages,
            clock_anomalies,
        }
    }

    /// The registry this recorder feeds.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one stage sample in microseconds. Samples past
    /// [`CLOCK_ANOMALY_THRESHOLD_US`] are counted as clock anomalies
    /// and excluded from the histogram.
    pub fn record_us(&self, stage: Stage, us: u64) {
        if us > CLOCK_ANOMALY_THRESHOLD_US {
            self.clock_anomalies.inc();
            return;
        }
        self.stages[stage as usize].record(us);
    }

    /// Records one stage sample from a duration (saturating to
    /// microseconds; clock-step artifacts are guarded exactly as in
    /// [`Recorder::record_us`]).
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.record_us(
            stage,
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        );
    }

    /// Stage samples rejected as clock artifacts so far.
    pub fn clock_anomalies(&self) -> u64 {
        self.clock_anomalies.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, i, "{stage:?} out of order");
        }
    }

    #[test]
    fn recorder_feeds_the_stage_histograms() {
        let reg = Registry::new("node 0");
        let rec = reg.recorder();
        rec.record_us(Stage::Apply, 25);
        rec.record(Stage::EndToEnd, Duration::from_micros(1500));
        assert_eq!(reg.histogram("stage_apply_us").count(), 1);
        let snap = reg.snapshot();
        let e2e = snap.histogram("stage_e2e_us").expect("registered");
        assert_eq!(e2e.count, 1);
        assert_eq!(e2e.min, 1500);
        // Every stage histogram exists after recorder construction.
        for stage in Stage::ALL {
            assert!(snap.histogram(stage.metric_name()).is_some());
        }
    }

    #[test]
    fn clock_step_artifacts_are_counted_not_recorded() {
        let reg = Registry::new("node 0");
        let rec = reg.recorder();
        rec.record_us(Stage::Apply, CLOCK_ANOMALY_THRESHOLD_US);
        rec.record_us(Stage::Apply, CLOCK_ANOMALY_THRESHOLD_US + 1);
        rec.record(Stage::Apply, Duration::from_secs(3600));
        // A stepped SystemTime arithmetic path can also saturate.
        rec.record(Stage::Apply, Duration::MAX);
        assert_eq!(rec.clock_anomalies(), 3);
        let snap = reg.snapshot();
        let apply = snap.histogram("stage_apply_us").expect("registered");
        assert_eq!(apply.count, 1, "only the sane sample lands");
        assert_eq!(apply.max, CLOCK_ANOMALY_THRESHOLD_US);
        assert_eq!(snap.counter("clock_anomalies"), Some(3));
    }
}
