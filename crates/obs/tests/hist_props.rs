//! Property tests for the histogram: bucket-bound soundness and
//! quantile monotonicity over arbitrary sample streams, plus a
//! concurrent-recording test (no lost counts under contention).

use at_obs::{bucket_bounds, bucket_index, Histogram, BUCKET_COUNT};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Every value falls inside the bounds of the bucket it indexes to,
    /// across the whole u64 range.
    #[test]
    fn samples_fall_within_reported_bucket_bounds(
        raw in any::<u64>(),
        shift in 0u32..64,
    ) {
        // Cover every magnitude, not just the uniform-u64 high end.
        let v = raw >> shift;
        let index = bucket_index(v);
        prop_assert!(index < BUCKET_COUNT);
        let (lo, hi) = bucket_bounds(index);
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
    }

    /// For arbitrary sample streams: reported quantile intervals
    /// contain the true sample quantile, and the upper bounds are
    /// monotone — p50 <= p99 <= p999 <= max.
    #[test]
    fn quantile_bounds_are_sound_and_monotone(
        samples in prop::collection::vec(any::<u64>(), 1..512),
        shift in 0u32..56,
    ) {
        let hist = Histogram::new();
        let samples: Vec<u64> = samples.iter().map(|v| v >> shift).collect();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let (lo, hi) = snap.quantile(q).expect("non-empty");
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(lo <= truth && truth <= hi,
                "q={}: true quantile {} outside [{}, {}]", q, truth, lo, hi);
        }
        let p50 = snap.quantile_hi(0.50);
        let p99 = snap.quantile_hi(0.99);
        let p999 = snap.quantile_hi(0.999);
        prop_assert!(p50 <= p99, "p50 {} > p99 {}", p50, p99);
        prop_assert!(p99 <= p999, "p99 {} > p999 {}", p99, p999);
        prop_assert!(p999 <= snap.max, "p999 {} > max {}", p999, snap.max);
    }

    /// A snapshot's derived count always equals the sum of its buckets
    /// and the sum of values matches, for any stream.
    #[test]
    fn snapshot_totals_are_self_consistent(
        samples in prop::collection::vec(0u64..1_000_000, 0..256),
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(snap.count, bucket_total);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
    }
}

/// Hammer one histogram from many threads: no recorded sample may be
/// lost, and the totals must match exactly.
#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Distinct per-thread value streams across magnitudes.
                for i in 0..PER_THREAD {
                    hist.record((i.wrapping_mul(2 * t + 1)) % (1 << (8 + t)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread panicked");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(
        snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        THREADS * PER_THREAD
    );
    assert!(snap.quantile(0.5).is_some());
}
