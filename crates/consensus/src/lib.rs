//! # at-consensus — the consensus-based baseline
//!
//! The paper's evaluation (Section 5) compares its broadcast-based asset
//! transfer against "a consensus-based" solution; Section 6 additionally
//! needs a BFT state-machine-replication service per shared account. This
//! crate provides both:
//!
//! * [`pbft`] — a PBFT-style three-phase atomic broadcast (pre-prepare /
//!   prepare / commit, batching, leader rotation via view change) over
//!   arbitrary replica groups;
//! * [`transfer_system`] — the consensus-based asset-transfer system
//!   (every process a replica, transfers totally ordered then executed),
//!   packaged as an [`at_net::Actor`] for the simulator.
//!
//! The same [`pbft::PbftReplica`] doubles as the per-account sequencer in
//! `at-core`'s Section 6 implementation — instantiated over the owner
//! group of each shared account, exactly as the paper prescribes
//! ("communication complexity polynomial in `k` and not in `N`").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pbft;
pub mod transfer_system;

pub use pbft::{PbftMsg, PbftReplica};
pub use transfer_system::{BaselineEvent, BaselineReplica};
