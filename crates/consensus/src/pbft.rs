//! A PBFT-style three-phase atomic broadcast (Castro & Liskov — the
//! paper's reference [13]).
//!
//! This is the *consensus-based baseline* of the evaluation in Section 5,
//! and the per-account sequencing service of Section 6. Replicas order
//! client requests into a single sequence:
//!
//! 1. the leader of the current view assigns sequence numbers and sends
//!    `PRE-PREPARE(view, seq, batch)`;
//! 2. replicas `PREPARE`; a slot is *prepared* after the pre-prepare plus
//!    `2f` matching prepares;
//! 3. prepared replicas `COMMIT`; a slot *commits* after `2f+1` matching
//!    commits and executes in sequence order.
//!
//! Liveness under a faulty leader comes from view changes: on timeout a
//! replica broadcasts `VIEW-CHANGE` carrying its prepared slots; the new
//! leader assembles `2f+1` of them into a `NEW-VIEW` re-proposing every
//! prepared slot.
//!
//! Scope: this baseline reproduces PBFT's *message pattern and round
//! structure* (what the evaluation measures: 3 one-way delays, `O(n²)`
//! messages per batch, leader bottleneck). It runs over the simulator's
//! authenticated channels; view-change messages are not themselves
//! signature-certified, which is sufficient for the crash-faulty and
//! performance experiments the baseline participates in (the paper treats
//! its consensus baseline as a black box).

use at_broadcast::types::Step;
use at_model::ProcessId;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Requirements on requests ordered by the replica group.
pub trait Request: Clone + Eq + Hash + fmt::Debug {}

/// Per-voter view-change evidence: `(sequence, view, batch)` triples of
/// the slots the voter had prepared.
type ViewChangeVotes<R> = HashMap<ProcessId, Vec<(u64, u64, Vec<R>)>>;

impl<T: Clone + Eq + Hash + fmt::Debug> Request for T {}

/// Wire messages of the PBFT baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbftMsg<R> {
    /// A client request forwarded to the current leader.
    Forward(R),
    /// Leader's ordering proposal for one slot.
    PrePrepare {
        /// The proposing view.
        view: u64,
        /// The slot.
        seq: u64,
        /// The proposed batch.
        batch: Vec<R>,
    },
    /// A replica's agreement to the proposal.
    Prepare {
        /// The view.
        view: u64,
        /// The slot.
        seq: u64,
    },
    /// A replica's commitment after preparing.
    Commit {
        /// The view.
        view: u64,
        /// The slot.
        seq: u64,
    },
    /// A replica's vote to move to `new_view`, with its prepared slots.
    ViewChange {
        /// The proposed view.
        new_view: u64,
        /// `(seq, view-it-prepared-in, batch)` for every prepared slot.
        prepared: Vec<(u64, u64, Vec<R>)>,
    },
    /// The new leader's installation message.
    NewView {
        /// The installed view.
        view: u64,
        /// Slots re-proposed in the new view.
        preprepares: Vec<(u64, Vec<R>)>,
    },
}

#[derive(Clone)]
struct Slot<R> {
    batch: Option<Vec<R>>,
    /// View the stored pre-prepare belongs to.
    view: u64,
    prepares: HashSet<ProcessId>,
    commits: HashSet<ProcessId>,
    prepared: bool,
    committed: bool,
    executed: bool,
}

impl<R> Default for Slot<R> {
    fn default() -> Self {
        Slot {
            batch: None,
            view: 0,
            prepares: HashSet::new(),
            commits: HashSet::new(),
            prepared: false,
            committed: false,
            executed: false,
        }
    }
}

/// One replica of the PBFT group.
///
/// Sans-I/O: every entry point fills a [`Step`] whose deliveries are the
/// executed requests, tagged with their global order index.
pub struct PbftReplica<R> {
    me: ProcessId,
    /// The replica group, in a fixed agreed order.
    members: Vec<ProcessId>,
    f: usize,
    view: u64,
    /// Leader-side: next slot to assign.
    next_seq: u64,
    /// Lowest not-yet-executed slot.
    next_execute: u64,
    slots: BTreeMap<u64, Slot<R>>,
    /// Requests this replica accepted from clients and must see executed.
    pending: Vec<R>,
    /// Leader-side batch under construction.
    batch: Vec<R>,
    batch_size: usize,
    executed: HashSet<R>,
    /// View-change votes per proposed view.
    view_changes: HashMap<u64, ViewChangeVotes<R>>,
    /// Global execution counter (delivery tag).
    execution_index: u64,
}

impl<R: Request> PbftReplica<R> {
    /// Creates a replica for `me` within the ordered `members` group.
    ///
    /// # Panics
    ///
    /// Panics when `me` is not a member or the group is empty.
    pub fn new(me: ProcessId, members: Vec<ProcessId>, batch_size: usize) -> Self {
        assert!(!members.is_empty(), "replica group must be non-empty");
        assert!(members.contains(&me), "replica must belong to the group");
        let f = (members.len() - 1) / 3;
        PbftReplica {
            me,
            members,
            f,
            view: 0,
            next_seq: 1,
            next_execute: 1,
            slots: BTreeMap::new(),
            pending: Vec::new(),
            batch: Vec::new(),
            batch_size: batch_size.max(1),
            executed: HashSet::new(),
            view_changes: HashMap::new(),
            execution_index: 0,
        }
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> usize {
        self.f
    }

    /// The leader of view `view`.
    pub fn leader_of(&self, view: u64) -> ProcessId {
        self.members[(view as usize) % self.members.len()]
    }

    /// The current leader.
    pub fn leader(&self) -> ProcessId {
        self.leader_of(self.view)
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    fn send_members(&self, step: &mut Step<PbftMsg<R>, (u64, R)>, msg: PbftMsg<R>) {
        for &member in &self.members {
            step.send(member, msg.clone());
        }
    }

    /// Accepts a client request at this replica: leads it or forwards it
    /// to the leader.
    pub fn submit(&mut self, request: R, step: &mut Step<PbftMsg<R>, (u64, R)>) {
        if self.executed.contains(&request) {
            return;
        }
        self.pending.push(request.clone());
        if self.is_leader() {
            self.enqueue_as_leader(request, step);
        } else {
            step.send(self.leader(), PbftMsg::Forward(request));
        }
    }

    /// Leader-side: forces out the batch under construction (the actor
    /// calls this from a batching timer).
    pub fn flush(&mut self, step: &mut Step<PbftMsg<R>, (u64, R)>) {
        if !self.is_leader() || self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_members(
            step,
            PbftMsg::PrePrepare {
                view: self.view,
                seq,
                batch,
            },
        );
    }

    fn enqueue_as_leader(&mut self, request: R, step: &mut Step<PbftMsg<R>, (u64, R)>) {
        self.batch.push(request);
        if self.batch.len() >= self.batch_size {
            self.flush(step);
        }
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: PbftMsg<R>,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if !self.members.contains(&from) {
            return; // only group members participate
        }
        match msg {
            PbftMsg::Forward(request) => {
                if self.is_leader() && !self.executed.contains(&request) {
                    self.enqueue_as_leader(request, step);
                }
            }
            PbftMsg::PrePrepare { view, seq, batch } => {
                self.on_preprepare(from, view, seq, batch, step);
            }
            PbftMsg::Prepare { view, seq } => self.on_prepare(from, view, seq, step),
            PbftMsg::Commit { view, seq } => self.on_commit(from, view, seq, step),
            PbftMsg::ViewChange { new_view, prepared } => {
                self.on_view_change(from, new_view, prepared, step);
            }
            PbftMsg::NewView { view, preprepares } => {
                self.on_new_view(from, view, preprepares, step);
            }
        }
    }

    fn on_preprepare(
        &mut self,
        from: ProcessId,
        view: u64,
        seq: u64,
        batch: Vec<R>,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if view != self.view || from != self.leader_of(view) {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() && slot.view == view {
            return; // duplicate pre-prepare
        }
        slot.batch = Some(batch);
        slot.view = view;
        slot.prepares.clear();
        slot.commits.retain(|_| false);
        let msg = PbftMsg::Prepare { view, seq };
        self.send_members(step, msg);
    }

    fn on_prepare(
        &mut self,
        from: ProcessId,
        view: u64,
        seq: u64,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if view != self.view {
            return;
        }
        let quorum = self.quorum();
        let slot = self.slots.entry(seq).or_default();
        slot.prepares.insert(from);
        // Prepared: pre-prepare (the stored batch) + 2f prepares. The
        // leader's pre-prepare counts as its prepare, and `send_members`
        // includes ourselves, so the quorum check is simply 2f+1 distinct
        // prepare-voters plus a stored batch.
        if slot.batch.is_some() && slot.prepares.len() >= quorum && !slot.prepared {
            slot.prepared = true;
            let msg = PbftMsg::Commit { view, seq };
            self.send_members(step, msg);
        }
    }

    fn on_commit(
        &mut self,
        from: ProcessId,
        view: u64,
        seq: u64,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if view != self.view {
            return;
        }
        let quorum = self.quorum();
        let slot = self.slots.entry(seq).or_default();
        slot.commits.insert(from);
        if slot.batch.is_some() && slot.commits.len() >= quorum && !slot.committed {
            slot.committed = true;
            self.execute_ready(step);
        }
    }

    fn execute_ready(&mut self, step: &mut Step<PbftMsg<R>, (u64, R)>) {
        while let Some(slot) = self.slots.get_mut(&self.next_execute) {
            if !slot.committed || slot.executed {
                break;
            }
            slot.executed = true;
            let batch = slot.batch.clone().expect("committed slot has a batch");
            self.next_execute += 1;
            for request in batch {
                if self.executed.insert(request.clone()) {
                    self.pending.retain(|p| p != &request);
                    self.execution_index += 1;
                    step.deliver(
                        self.me,
                        at_model::SeqNo::new(self.execution_index),
                        (self.execution_index, request),
                    );
                }
            }
        }
    }

    /// Called by the embedding actor when progress stalls: votes to
    /// replace the current leader.
    pub fn on_timeout(&mut self, step: &mut Step<PbftMsg<R>, (u64, R)>) {
        let new_view = self.view + 1;
        let prepared: Vec<(u64, u64, Vec<R>)> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.prepared && !slot.executed)
            .map(|(&seq, slot)| {
                (
                    seq,
                    slot.view,
                    slot.batch.clone().expect("prepared slot has a batch"),
                )
            })
            .collect();
        let msg = PbftMsg::ViewChange { new_view, prepared };
        self.send_members(step, msg);
    }

    fn on_view_change(
        &mut self,
        from: ProcessId,
        new_view: u64,
        prepared: Vec<(u64, u64, Vec<R>)>,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if new_view <= self.view {
            return;
        }
        let votes = self.view_changes.entry(new_view).or_default();
        votes.insert(from, prepared);
        // Only the would-be leader assembles the new view.
        if self.leader_of(new_view) != self.me {
            return;
        }
        if self.view_changes[&new_view].len() < self.quorum() {
            return;
        }

        // Re-propose, for every slot reported prepared by anyone, the
        // batch prepared in the highest view.
        let mut chosen: BTreeMap<u64, (u64, Vec<R>)> = BTreeMap::new();
        for prepared in self.view_changes[&new_view].values() {
            for (seq, slot_view, batch) in prepared {
                let entry = chosen.entry(*seq).or_insert((*slot_view, batch.clone()));
                if *slot_view > entry.0 {
                    *entry = (*slot_view, batch.clone());
                }
            }
        }
        let preprepares: Vec<(u64, Vec<R>)> = chosen
            .into_iter()
            .map(|(seq, (_, batch))| (seq, batch))
            .collect();

        let msg = PbftMsg::NewView {
            view: new_view,
            preprepares: preprepares.clone(),
        };
        self.send_members(step, msg);
    }

    fn on_new_view(
        &mut self,
        from: ProcessId,
        view: u64,
        preprepares: Vec<(u64, Vec<R>)>,
        step: &mut Step<PbftMsg<R>, (u64, R)>,
    ) {
        if view <= self.view || from != self.leader_of(view) {
            return;
        }
        self.view = view;
        self.view_changes.retain(|&v, _| v > view);

        let max_seq = preprepares.iter().map(|(seq, _)| *seq).max().unwrap_or(0);
        if self.me == self.leader_of(view) {
            self.next_seq = self.next_seq.max(max_seq + 1);
        }

        // Treat the embedded pre-prepares as fresh proposals in the new
        // view.
        for (seq, batch) in preprepares {
            let slot = self.slots.entry(seq).or_default();
            if slot.executed {
                continue;
            }
            slot.batch = Some(batch);
            slot.view = view;
            slot.prepared = false;
            slot.committed = false;
            slot.prepares.clear();
            slot.commits.clear();
            let msg = PbftMsg::Prepare { view, seq };
            self.send_members(step, msg);
        }

        // Re-inject unexecuted client requests.
        let pending = self.pending.clone();
        if self.is_leader() {
            for request in pending {
                if !self.executed.contains(&request) {
                    self.enqueue_as_leader(request, step);
                }
            }
            self.flush(step);
        } else {
            for request in pending {
                if !self.executed.contains(&request) {
                    step.send(self.leader(), PbftMsg::Forward(request));
                }
            }
        }
    }

    /// Number of requests executed so far.
    pub fn executed_count(&self) -> u64 {
        self.execution_index
    }

    /// Whether `request` has been executed here.
    pub fn has_executed(&self, request: &R) -> bool {
        self.executed.contains(request)
    }
}

impl<R: Request> fmt::Debug for PbftReplica<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PbftReplica(me={}, view={}, leader={}, executed={})",
            self.me,
            self.view,
            self.leader(),
            self.execution_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn group(n: usize) -> Vec<ProcessId> {
        (0..n as u32).map(p).collect()
    }

    struct Net {
        replicas: Vec<PbftReplica<u64>>,
        inflight: VecDeque<(ProcessId, ProcessId, PbftMsg<u64>)>,
        executed: Vec<Vec<u64>>,
        crashed: HashSet<ProcessId>,
    }

    impl Net {
        fn new(n: usize, batch_size: usize) -> Net {
            Net {
                replicas: (0..n as u32)
                    .map(|i| PbftReplica::new(p(i), group(n), batch_size))
                    .collect(),
                inflight: VecDeque::new(),
                executed: vec![Vec::new(); n],
                crashed: HashSet::new(),
            }
        }

        fn absorb(&mut self, from: ProcessId, step: Step<PbftMsg<u64>, (u64, u64)>) {
            for out in step.outgoing {
                self.inflight.push_back((from, out.to, out.msg));
            }
            for delivery in step.deliveries {
                self.executed[delivery.source.as_usize()].push(delivery.payload.1);
            }
        }

        fn submit(&mut self, at: ProcessId, request: u64) {
            let mut step = Step::new();
            self.replicas[at.as_usize()].submit(request, &mut step);
            self.absorb(at, step);
        }

        fn flush(&mut self, at: ProcessId) {
            let mut step = Step::new();
            self.replicas[at.as_usize()].flush(&mut step);
            self.absorb(at, step);
        }

        fn timeout(&mut self, at: ProcessId) {
            let mut step = Step::new();
            self.replicas[at.as_usize()].on_timeout(&mut step);
            self.absorb(at, step);
        }

        fn run(&mut self) {
            while let Some((from, to, msg)) = self.inflight.pop_front() {
                if self.crashed.contains(&to) || self.crashed.contains(&from) {
                    continue;
                }
                let mut step = Step::new();
                self.replicas[to.as_usize()].on_message(from, msg, &mut step);
                self.absorb(to, step);
            }
        }
    }

    #[test]
    fn orders_requests_through_three_phases() {
        let mut net = Net::new(4, 1);
        net.submit(p(0), 100); // p0 is the leader of view 0
        net.run();
        for i in 0..4 {
            assert_eq!(net.executed[i], vec![100], "replica {i}");
        }
    }

    #[test]
    fn requests_submitted_at_followers_are_forwarded() {
        let mut net = Net::new(4, 1);
        net.submit(p(2), 7);
        net.run();
        for i in 0..4 {
            assert_eq!(net.executed[i], vec![7]);
        }
    }

    #[test]
    fn total_order_is_identical_everywhere() {
        let mut net = Net::new(4, 1);
        for v in [5u64, 6, 7, 8, 9] {
            net.submit(p((v % 4) as u32), v);
        }
        net.run();
        let reference = net.executed[0].clone();
        assert_eq!(reference.len(), 5);
        for i in 1..4 {
            assert_eq!(net.executed[i], reference, "replica {i}");
        }
    }

    #[test]
    fn batching_groups_requests() {
        let mut net = Net::new(4, 3);
        net.submit(p(0), 1);
        net.submit(p(0), 2);
        net.run();
        // Batch not full: nothing executed yet.
        assert!(net.executed[0].is_empty());
        net.flush(p(0));
        net.run();
        assert_eq!(net.executed[0], vec![1, 2]);
        // A full batch flushes by itself.
        net.submit(p(0), 3);
        net.submit(p(0), 4);
        net.submit(p(0), 5);
        net.run();
        assert_eq!(net.executed[0], vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn progress_with_crashed_follower() {
        let mut net = Net::new(4, 1);
        net.crashed.insert(p(3));
        net.submit(p(0), 11);
        net.run();
        for i in 0..3 {
            assert_eq!(net.executed[i], vec![11]);
        }
        assert!(net.executed[3].is_empty());
    }

    #[test]
    fn leader_crash_recovers_via_view_change() {
        let mut net = Net::new(4, 1);
        net.crashed.insert(p(0)); // leader of view 0 is dead
        net.submit(p(1), 42); // forwarded to p0, lost
        net.run();
        assert!(net.executed[1].is_empty());
        // Timeouts fire at the survivors.
        for i in 1..4 {
            net.timeout(p(i));
        }
        net.run();
        // View 1's leader is p1; the pending request was re-injected.
        for i in 1..4 {
            assert_eq!(net.executed[i], vec![42], "replica {i}");
            assert_eq!(net.replicas[i].view(), 1);
        }
    }

    #[test]
    fn view_change_preserves_prepared_requests() {
        let mut net = Net::new(4, 1);
        net.submit(p(0), 9);
        // Run only until prepares are exchanged, then "crash" the leader
        // before commits complete: emulate by dropping all Commit messages
        // from p0 and crashing it afterwards.
        let mut commits_blocked = VecDeque::new();
        while let Some((from, to, msg)) = net.inflight.pop_front() {
            if matches!(msg, PbftMsg::Commit { .. }) {
                commits_blocked.push_back((from, to, msg));
                continue;
            }
            let mut step = Step::new();
            net.replicas[to.as_usize()].on_message(from, msg.clone(), &mut step);
            net.absorb(to, step);
        }
        net.crashed.insert(p(0));
        for i in 1..4 {
            net.timeout(p(i));
        }
        net.run();
        for i in 1..4 {
            assert_eq!(net.executed[i], vec![9], "replica {i}");
        }
    }

    #[test]
    fn duplicate_submissions_execute_once() {
        let mut net = Net::new(4, 1);
        net.submit(p(0), 3);
        net.run();
        net.submit(p(0), 3);
        net.run();
        for i in 0..4 {
            assert_eq!(net.executed[i], vec![3]);
        }
    }

    #[test]
    fn non_member_messages_ignored() {
        let members = vec![p(0), p(1), p(2), p(3)];
        let mut replica: PbftReplica<u64> = PbftReplica::new(p(0), members, 1);
        let mut step = Step::new();
        replica.on_message(
            p(9),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                batch: vec![1],
            },
            &mut step,
        );
        assert!(step.outgoing.is_empty());
    }

    #[test]
    fn leader_rotation_and_accessors() {
        let replica: PbftReplica<u64> = PbftReplica::new(p(1), group(4), 1);
        assert_eq!(replica.leader_of(0), p(0));
        assert_eq!(replica.leader_of(1), p(1));
        assert_eq!(replica.leader_of(5), p(1));
        assert_eq!(replica.fault_threshold(), 1);
        assert!(!replica.is_leader());
        assert_eq!(replica.executed_count(), 0);
        assert!(!replica.has_executed(&1));
        assert!(format!("{replica:?}").contains("view=0"));
    }

    #[test]
    fn single_replica_group_executes_immediately() {
        let mut replica: PbftReplica<u64> = PbftReplica::new(p(0), vec![p(0)], 1);
        let mut step = Step::new();
        replica.submit(77, &mut step);
        // Process self-addressed messages until quiescent.
        let mut inflight: VecDeque<PbftMsg<u64>> =
            step.outgoing.into_iter().map(|o| o.msg).collect();
        let mut executed: Vec<u64> = step.deliveries.iter().map(|d| d.payload.1).collect();
        while let Some(msg) = inflight.pop_front() {
            let mut step = Step::new();
            replica.on_message(p(0), msg, &mut step);
            inflight.extend(step.outgoing.into_iter().map(|o| o.msg));
            executed.extend(step.deliveries.iter().map(|d| d.payload.1));
        }
        assert_eq!(executed, vec![77]);
    }
}
