//! The consensus-based asset-transfer system: the baseline of the
//! paper's evaluation.
//!
//! Every process is a PBFT replica; transfers are totally ordered by the
//! replica group and then executed against a replicated [`Ledger`]
//! (validated per `Δ` at execution time). This is the architecture the
//! paper argues is *unnecessary* for payments — the benchmark harness
//! runs it head-to-head against the broadcast-based system of `at-core`.

use crate::pbft::{PbftMsg, PbftReplica};
use at_broadcast::types::Step;
use at_model::{Ledger, ProcessId, Transfer};
use at_net::{Actor, Context, VirtualTime};

/// Completion events surfaced to the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineEvent {
    /// A transfer was ordered and executed; emitted by the replica that
    /// accepted it from the client (its originator).
    Completed {
        /// The transfer.
        transfer: Transfer,
        /// Whether execution succeeded under `Δ`.
        success: bool,
    },
}

/// Timer id used for periodic leader-side batch flushing.
const FLUSH_TIMER: u64 = 1;

/// One process of the consensus-based transfer system.
pub struct BaselineReplica {
    replica: PbftReplica<Transfer>,
    ledger: Ledger,
    /// Leader batch flush period, `None` = flush on every submission.
    flush_every: Option<VirtualTime>,
}

impl BaselineReplica {
    /// Creates the replica for `me` in a system of `n` processes starting
    /// from `initial`.
    pub fn new(me: ProcessId, n: usize, initial: Ledger, batch_size: usize) -> Self {
        let members = ProcessId::all(n).collect();
        BaselineReplica {
            replica: PbftReplica::new(me, members, batch_size),
            ledger: initial,
            flush_every: None,
        }
    }

    /// Enables periodic leader-side batch flushing.
    pub fn with_flush_interval(mut self, interval: VirtualTime) -> Self {
        self.flush_every = Some(interval);
        self
    }

    /// Submits a transfer at this replica (invoked by the harness through
    /// [`at_net::Simulation::schedule`]).
    pub fn submit(
        &mut self,
        transfer: Transfer,
        ctx: &mut Context<'_, PbftMsg<Transfer>, BaselineEvent>,
    ) {
        let mut step = Step::new();
        self.replica.submit(transfer, &mut step);
        self.absorb(step, ctx);
    }

    /// The replica's current ledger state (for end-of-run assertions).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Forces out any partially filled leader batch — used by benchmark
    /// harnesses that drive flushing from scheduled commands rather than
    /// the recurring timer.
    pub fn flush_now(&mut self, ctx: &mut Context<'_, PbftMsg<Transfer>, BaselineEvent>) {
        let mut step = Step::new();
        self.replica.flush(&mut step);
        self.absorb(step, ctx);
    }

    /// Number of transfers executed here.
    pub fn executed_count(&self) -> u64 {
        self.replica.executed_count()
    }

    fn absorb(
        &mut self,
        step: Step<PbftMsg<Transfer>, (u64, Transfer)>,
        ctx: &mut Context<'_, PbftMsg<Transfer>, BaselineEvent>,
    ) {
        for out in step.outgoing {
            ctx.send(out.to, out.msg);
        }
        for delivery in step.deliveries {
            let (_, transfer) = delivery.payload;
            let success = self.ledger.apply(&transfer).is_ok();
            if transfer.originator == ctx.me() {
                ctx.emit(BaselineEvent::Completed { transfer, success });
            }
        }
    }
}

impl Actor for BaselineReplica {
    type Msg = PbftMsg<Transfer>;
    type Event = BaselineEvent;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) {
        if let Some(interval) = self.flush_every {
            ctx.set_timer(interval, FLUSH_TIMER);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        let mut step = Step::new();
        self.replica.on_message(from, msg, &mut step);
        self.absorb(step, ctx);
    }

    fn on_timer(&mut self, timer: u64, ctx: &mut Context<'_, Self::Msg, Self::Event>) {
        if timer == FLUSH_TIMER {
            let mut step = Step::new();
            self.replica.flush(&mut step);
            self.absorb(step, ctx);
            if let Some(interval) = self.flush_every {
                ctx.set_timer(interval, FLUSH_TIMER);
            }
        }
    }
}

impl std::fmt::Debug for BaselineReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BaselineReplica({:?}, executed={})",
            self.replica,
            self.replica.executed_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_model::{AccountId, Amount, SeqNo};
    use at_net::{NetConfig, Simulation};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn system(n: usize, batch_size: usize) -> Simulation<BaselineReplica> {
        let initial = Ledger::uniform(n, Amount::new(100));
        let replicas = (0..n as u32)
            .map(|i| BaselineReplica::new(p(i), n, initial.clone(), batch_size))
            .collect();
        Simulation::new(replicas, NetConfig::lan(7))
    }

    #[test]
    fn transfer_executes_on_all_replicas() {
        let mut sim = system(4, 1);
        let tx = Transfer::new(a(0), a(1), Amount::new(30), p(0), SeqNo::new(1));
        sim.schedule(VirtualTime::ZERO, p(0), move |replica, ctx| {
            replica.submit(tx, ctx);
        });
        assert!(sim.run_until_quiet(100_000));
        let events = sim.take_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0].2,
            BaselineEvent::Completed { success: true, .. }
        ));
        for i in 0..4 {
            let ledger = sim.actor(p(i)).ledger();
            assert_eq!(ledger.read(a(0)), Amount::new(70), "replica {i}");
            assert_eq!(ledger.read(a(1)), Amount::new(130), "replica {i}");
        }
    }

    #[test]
    fn double_spend_rejected_by_total_order() {
        let mut sim = system(4, 1);
        // Two transfers of 80 from an account holding 100: exactly one can
        // succeed, on every replica identically.
        let tx1 = Transfer::new(a(0), a(1), Amount::new(80), p(0), SeqNo::new(1));
        let tx2 = Transfer::new(a(0), a(2), Amount::new(80), p(0), SeqNo::new(2));
        sim.schedule(VirtualTime::ZERO, p(0), move |replica, ctx| {
            replica.submit(tx1, ctx);
        });
        sim.schedule(VirtualTime::ZERO, p(0), move |replica, ctx| {
            replica.submit(tx2, ctx);
        });
        assert!(sim.run_until_quiet(100_000));
        let events = sim.take_events();
        let successes = events
            .iter()
            .filter(|(_, _, e)| matches!(e, BaselineEvent::Completed { success: true, .. }))
            .count();
        assert_eq!(successes, 1);
        for i in 0..4 {
            assert_eq!(
                sim.actor(p(i)).ledger().total_supply(),
                Amount::new(400),
                "replica {i}"
            );
        }
    }

    #[test]
    fn submissions_at_followers_complete() {
        let mut sim = system(4, 1);
        let tx = Transfer::new(a(2), a(3), Amount::new(5), p(2), SeqNo::new(1));
        sim.schedule(VirtualTime::ZERO, p(2), move |replica, ctx| {
            replica.submit(tx, ctx);
        });
        assert!(sim.run_until_quiet(100_000));
        let events = sim.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, p(2));
    }

    #[test]
    fn batched_flush_timer_drives_progress() {
        let n = 4;
        let initial = Ledger::uniform(n, Amount::new(100));
        let replicas = (0..n as u32)
            .map(|i| {
                BaselineReplica::new(p(i), n, initial.clone(), 64)
                    .with_flush_interval(VirtualTime::from_millis(5))
            })
            .collect();
        let mut sim = Simulation::new(replicas, NetConfig::lan(3));
        for s in 1..=3u64 {
            let tx = Transfer::new(a(0), a(1), Amount::new(1), p(0), SeqNo::new(s));
            sim.schedule(VirtualTime::ZERO, p(0), move |replica, ctx| {
                replica.submit(tx, ctx);
            });
        }
        // Recurring timers never quiesce; run to a deadline instead.
        sim.run_until(VirtualTime::from_millis(100));
        let completed = sim
            .take_events()
            .iter()
            .filter(|(_, _, e)| matches!(e, BaselineEvent::Completed { success: true, .. }))
            .count();
        assert_eq!(completed, 3);
        assert_eq!(sim.actor(p(1)).ledger().read(a(1)), Amount::new(103));
    }

    #[test]
    fn debug_renders() {
        let replica = BaselineReplica::new(p(0), 4, Ledger::uniform(4, Amount::new(1)), 1);
        assert!(format!("{replica:?}").contains("executed=0"));
        assert_eq!(replica.executed_count(), 0);
    }
}
