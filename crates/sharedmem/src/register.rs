//! Atomic read/write registers.
//!
//! The shared-memory model of Section 2.1 is built from atomic registers.
//! [`Register`] is the abstraction; [`MutexRegister`] realises it with a
//! short critical section (the lock models the atomicity of a hardware
//! register operation — the *algorithms* built on top perform only
//! wait-free register operations).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// An atomic single-value register shared between processes.
pub trait Register<T: Clone>: Send + Sync {
    /// Atomically reads the register.
    fn read(&self) -> T;

    /// Atomically writes the register.
    fn write(&self, value: T);
}

/// A register implemented with a mutex-protected slot.
///
/// # Example
///
/// ```
/// use at_sharedmem::register::{MutexRegister, Register};
///
/// let register = MutexRegister::new(0u64);
/// register.write(7);
/// assert_eq!(register.read(), 7);
/// ```
pub struct MutexRegister<T> {
    slot: Mutex<T>,
}

impl<T: Clone + Send> MutexRegister<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        MutexRegister {
            slot: Mutex::new(initial),
        }
    }
}

impl<T: Clone + Send> Register<T> for MutexRegister<T> {
    fn read(&self) -> T {
        self.slot.lock().clone()
    }

    fn write(&self, value: T) {
        *self.slot.lock() = value;
    }
}

impl<T: Clone + Send + fmt::Debug> fmt::Debug for MutexRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MutexRegister({:?})", self.read())
    }
}

impl<T: Clone + Send + Default> Default for MutexRegister<T> {
    fn default() -> Self {
        MutexRegister::new(T::default())
    }
}

/// A 1-writer-N-reader register array: one register per process, as used
/// by the announcement arrays `R_a[i]` of Figure 3.
pub struct RegisterArray<T> {
    registers: Vec<Arc<MutexRegister<Option<T>>>>,
}

impl<T: Clone + Send + fmt::Debug> fmt::Debug for RegisterArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.collect()).finish()
    }
}

impl<T: Clone + Send> RegisterArray<T> {
    /// Creates `n` registers, all initially `⊥` (`None`).
    pub fn new(n: usize) -> Self {
        RegisterArray {
            registers: (0..n).map(|_| Arc::new(MutexRegister::new(None))).collect(),
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Writes process `i`'s register.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn write(&self, i: usize, value: T) {
        self.registers[i].write(Some(value));
    }

    /// Reads process `i`'s register (`None` = `⊥`, never written).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn read(&self, i: usize) -> Option<T> {
        self.registers[i].read()
    }

    /// The `collect` primitive: a (non-atomic) read of all registers.
    pub fn collect(&self) -> Vec<Option<T>> {
        self.registers.iter().map(|r| r.read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn register_read_write() {
        let r = MutexRegister::new(1u32);
        assert_eq!(r.read(), 1);
        r.write(2);
        assert_eq!(r.read(), 2);
    }

    #[test]
    fn register_default() {
        let r: MutexRegister<u64> = MutexRegister::default();
        assert_eq!(r.read(), 0);
        assert!(format!("{r:?}").contains("MutexRegister"));
    }

    #[test]
    fn register_is_shared_across_threads() {
        let r = Arc::new(MutexRegister::new(0u64));
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    for _ in 0..100 {
                        r.write(i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert!(r.read() < 4);
    }

    #[test]
    fn register_array_initially_bottom() {
        let array: RegisterArray<u32> = RegisterArray::new(3);
        assert_eq!(array.len(), 3);
        assert!(!array.is_empty());
        assert_eq!(array.collect(), vec![None, None, None]);
    }

    #[test]
    fn register_array_write_read() {
        let array: RegisterArray<u32> = RegisterArray::new(3);
        array.write(1, 42);
        assert_eq!(array.read(1), Some(42));
        assert_eq!(array.read(0), None);
        assert_eq!(array.collect(), vec![None, Some(42), None]);
    }

    #[test]
    #[should_panic]
    fn register_array_out_of_range_panics() {
        let array: RegisterArray<u32> = RegisterArray::new(2);
        array.write(5, 1);
    }
}
