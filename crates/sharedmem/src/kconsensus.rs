//! `k`-consensus objects (Jayanti & Toueg 1992).
//!
//! A `k`-consensus object exports a single operation `propose(v)`: the
//! first `k` invocations return the value of the *first* invocation; every
//! later invocation returns `⊥`. The object is known to have consensus
//! number exactly `k`, which is why Figure 3's reduction to it bounds the
//! consensus number of `k`-shared asset transfer from above.
//!
//! Such an object cannot be built from registers alone (for `k ≥ 2`); this
//! implementation realises the *oracle* with a mutex-protected cell — the
//! algorithms layered on top use only its `propose` interface.

use parking_lot::Mutex;
use std::fmt;

/// A `k`-consensus object.
pub struct KConsensus<V> {
    k: usize,
    state: Mutex<State<V>>,
}

struct State<V> {
    decided: Option<V>,
    invocations: usize,
}

impl<V: Clone + Send> KConsensus<V> {
    /// Creates a `k`-consensus object.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-consensus requires k >= 1");
        KConsensus {
            k,
            state: Mutex::new(State {
                decided: None,
                invocations: 0,
            }),
        }
    }

    /// The object's `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Proposes `value`; returns the decided value, or `None` (`⊥`) when
    /// invoked more than `k` times.
    pub fn propose(&self, value: V) -> Option<V> {
        let mut state = self.state.lock();
        state.invocations += 1;
        if state.invocations > self.k {
            return None;
        }
        Some(state.decided.get_or_insert(value).clone())
    }

    /// The decided value, if any invocation happened yet.
    pub fn decision(&self) -> Option<V> {
        self.state.lock().decided.clone()
    }
}

impl<V: Clone + Send + fmt::Debug> fmt::Debug for KConsensus<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        write!(
            f,
            "KConsensus(k={}, decided={:?}, invocations={})",
            self.k, state.decided, state.invocations
        )
    }
}

/// An unbounded, lazily allocated list of `k`-consensus objects — the
/// `kC_a[i], i ≥ 0` series of Figure 3.
pub struct KConsensusList<V> {
    k: usize,
    objects: Mutex<Vec<std::sync::Arc<KConsensus<V>>>>,
}

impl<V: Clone + Send> KConsensusList<V> {
    /// Creates an empty list of `k`-consensus objects.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-consensus requires k >= 1");
        KConsensusList {
            k,
            objects: Mutex::new(Vec::new()),
        }
    }

    /// The shared object for round `round`, allocating as needed.
    pub fn round(&self, round: u64) -> std::sync::Arc<KConsensus<V>> {
        let mut objects = self.objects.lock();
        let index = round as usize;
        while objects.len() <= index {
            objects.push(std::sync::Arc::new(KConsensus::new(self.k)));
        }
        std::sync::Arc::clone(&objects[index])
    }

    /// How many rounds have been allocated.
    pub fn allocated(&self) -> usize {
        self.objects.lock().len()
    }
}

impl<V: Clone + Send> fmt::Debug for KConsensusList<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KConsensusList(k={}, allocated={})",
            self.k,
            self.allocated()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn first_value_wins() {
        let object = KConsensus::new(3);
        assert_eq!(object.propose(10), Some(10));
        assert_eq!(object.propose(20), Some(10));
        assert_eq!(object.propose(30), Some(10));
        assert_eq!(object.decision(), Some(10));
    }

    #[test]
    fn returns_bottom_after_k_invocations() {
        let object = KConsensus::new(2);
        assert_eq!(object.propose(1), Some(1));
        assert_eq!(object.propose(2), Some(1));
        assert_eq!(object.propose(3), None);
        assert_eq!(object.propose(4), None);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = KConsensus::<u32>::new(0);
    }

    #[test]
    fn k_reports() {
        let object = KConsensus::<u8>::new(5);
        assert_eq!(object.k(), 5);
        assert_eq!(object.decision(), None);
    }

    #[test]
    fn concurrent_agreement_and_validity() {
        for _ in 0..20 {
            let k = 8;
            let object = Arc::new(KConsensus::new(k));
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let object = Arc::clone(&object);
                    thread::spawn(move || object.propose(i as u64))
                })
                .collect();
            let decisions: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().unwrap().expect("within k invocations"))
                .collect();
            // Agreement: all equal. Validity: the value was proposed.
            let unique: HashSet<_> = decisions.iter().collect();
            assert_eq!(unique.len(), 1);
            assert!(decisions[0] < k as u64);
        }
    }

    #[test]
    fn list_allocates_lazily_and_stably() {
        let list: KConsensusList<u32> = KConsensusList::new(2);
        assert_eq!(list.allocated(), 0);
        let round5 = list.round(5);
        assert_eq!(list.allocated(), 6);
        assert_eq!(round5.propose(9), Some(9));
        // Same round returns the same object.
        assert_eq!(list.round(5).propose(1), Some(9));
        // Distinct rounds are independent.
        assert_eq!(list.round(0).propose(7), Some(7));
    }

    #[test]
    fn debug_renders() {
        let object = KConsensus::<u8>::new(1);
        assert!(format!("{object:?}").contains("k=1"));
        let list = KConsensusList::<u8>::new(1);
        assert!(format!("{list:?}").contains("allocated=0"));
    }
}
