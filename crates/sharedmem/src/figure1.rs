//! Figure 1: wait-free asset transfer from atomic snapshots.
//!
//! The paper's central shared-memory algorithm. Every process owns one
//! slot of an atomic snapshot object holding the set of successful
//! transfers it has executed. Because each account has **at most one
//! owner**, all outgoing transfers of an account live in a single slot, so
//! the owner alone orders them — no consensus anywhere:
//!
//! ```text
//! Upon transfer(a, b, x):            Upon read(a):
//!   S = AS.snapshot()                  S = AS.snapshot()
//!   if p ∉ µ(a) ∨ balance(a,S) < x     return balance(a, S)
//!       return false
//!   ops_p = ops_p ∪ {(a,b,x)}
//!   AS.update(ops_p)
//!   return true
//! ```
//!
//! Theorem 1: this implementation is linearizable and wait-free, hence the
//! single-owner asset-transfer type has consensus number 1.

use crate::object::SharedAssetTransfer;
use crate::snapshot::{AfekSnapshot, AtomicSnapshot, LockSnapshot};
use at_model::spec::balance_from_transfers;
use at_model::{AccountId, Amount, OwnerMap, ProcessId, SeqNo, Transfer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The per-slot value: an immutable set of the owner's successful
/// transfers. `Arc` keeps `update` cheap to publish and `snapshot` cheap
/// to copy.
type Ops = Arc<Vec<Transfer>>;

/// Figure 1's asset-transfer object, generic over the snapshot
/// implementation.
///
/// Use [`SnapshotAssetTransfer::wait_free`] for the Afek et al. snapshot
/// (the construction of the theorem) or
/// [`SnapshotAssetTransfer::blocking`] for the lock-based snapshot.
///
/// # Example
///
/// ```
/// use at_model::{AccountId, Amount, ProcessId};
/// use at_sharedmem::figure1::SnapshotAssetTransfer;
/// use at_sharedmem::object::SharedAssetTransfer;
///
/// // 3 processes, account i owned by process i, 100 units each.
/// let object = SnapshotAssetTransfer::wait_free_uniform(3, Amount::new(100));
/// let p0 = ProcessId::new(0);
/// assert!(object.transfer(p0, AccountId::new(0), AccountId::new(2), Amount::new(60)));
/// assert!(!object.transfer(p0, AccountId::new(0), AccountId::new(2), Amount::new(60)));
/// assert_eq!(object.read(AccountId::new(2)), Amount::new(160));
/// ```
pub struct SnapshotAssetTransfer<S> {
    snapshot: S,
    initial: BTreeMap<AccountId, Amount>,
    owners: OwnerMap,
    /// Process-local state (`ops_p` and the sequence counter), stored
    /// per-slot; only process `p` touches slot `p`, the mutex merely
    /// satisfies `Sync`.
    locals: Vec<Mutex<Local>>,
}

#[derive(Default)]
struct Local {
    ops: Vec<Transfer>,
    seq: SeqNo,
}

impl SnapshotAssetTransfer<AfekSnapshot<Ops>> {
    /// Builds on the wait-free Afek et al. snapshot.
    pub fn wait_free<I>(n: usize, initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        Self::with_snapshot(AfekSnapshot::new(n, Arc::new(Vec::new())), initial, owners)
    }

    /// Wait-free object with the uniform benchmark topology.
    pub fn wait_free_uniform(n: usize, initial: Amount) -> Self {
        let owners = OwnerMap::one_account_per_process(n);
        let balances: Vec<_> = AccountId::all(n).map(|a| (a, initial)).collect();
        Self::wait_free(n, balances, owners)
    }
}

impl SnapshotAssetTransfer<LockSnapshot<Ops>> {
    /// Builds on the blocking lock-based snapshot.
    pub fn blocking<I>(n: usize, initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        Self::with_snapshot(LockSnapshot::new(n, Arc::new(Vec::new())), initial, owners)
    }

    /// Blocking object with the uniform benchmark topology.
    pub fn blocking_uniform(n: usize, initial: Amount) -> Self {
        let owners = OwnerMap::one_account_per_process(n);
        let balances: Vec<_> = AccountId::all(n).map(|a| (a, initial)).collect();
        Self::blocking(n, balances, owners)
    }
}

impl<S: AtomicSnapshot<Ops>> SnapshotAssetTransfer<S> {
    /// Builds on an arbitrary snapshot implementation.
    ///
    /// # Panics
    ///
    /// Panics when the owner map is not single-owner (`|µ(a)| ≤ 1`): the
    /// Figure 1 algorithm is only correct in the Nakamoto setting. Use
    /// [`crate::figure3`] for shared accounts.
    pub fn with_snapshot<I>(snapshot: S, initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        assert!(
            owners.sharedness() <= 1,
            "Figure 1 requires single-owner accounts; got sharedness {}",
            owners.sharedness()
        );
        let n = snapshot.len();
        let mut balances: BTreeMap<AccountId, Amount> = initial.into_iter().collect();
        for account in owners.accounts() {
            balances.entry(account).or_insert(Amount::ZERO);
        }
        SnapshotAssetTransfer {
            snapshot,
            initial: balances,
            owners,
            locals: (0..n).map(|_| Mutex::new(Local::default())).collect(),
        }
    }

    /// The owner map.
    pub fn owners(&self) -> &OwnerMap {
        &self.owners
    }

    /// `balance(a, S)` of Figure 1 over a snapshot `S`.
    fn balance(&self, account: AccountId, view: &[Ops]) -> Amount {
        let initial = self.initial.get(&account).copied().unwrap_or(Amount::ZERO);
        balance_from_transfers(account, initial, view.iter().flat_map(|ops| ops.iter()))
            .expect("figure 1 maintains non-negative balances")
    }
}

impl<S: AtomicSnapshot<Ops>> SharedAssetTransfer for SnapshotAssetTransfer<S> {
    fn transfer(
        &self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> bool {
        // The model assumes sequential processes; holding the local lock
        // across the whole operation keeps the object safe even if a
        // caller violates that assumption.
        let mut local = self.locals[process.as_usize()].lock();
        // Line 1: take a snapshot.
        let view = self.snapshot.snapshot();
        // Line 2: owner and balance validation. Unknown accounts have no
        // owner, so p ∉ µ(a) covers them.
        if !self.owners.is_owner(process, source)
            || !self.initial.contains_key(&destination)
            || self.balance(source, &view) < amount
        {
            return false;
        }
        // Lines 4-5: append to ops_p and publish.
        local.seq = local.seq.next();
        let tx = Transfer::new(source, destination, amount, process, local.seq);
        local.ops.push(tx);
        self.snapshot
            .update(process.as_usize(), Arc::new(local.ops.clone()));
        true
    }

    fn read(&self, account: AccountId) -> Amount {
        // Lines 7-8.
        let view = self.snapshot.snapshot();
        self.balance(account, &view)
    }
}

impl<S: AtomicSnapshot<Ops>> fmt::Debug for SnapshotAssetTransfer<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let view = self.snapshot.snapshot();
        f.debug_map()
            .entries(
                self.initial
                    .keys()
                    .map(|&account| (account, self.balance(account, &view).units())),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn amt(x: u64) -> Amount {
        Amount::new(x)
    }

    #[test]
    fn sequential_semantics_match_spec() {
        let object = SnapshotAssetTransfer::wait_free_uniform(3, amt(10));
        assert_eq!(object.read(a(0)), amt(10));
        assert!(object.transfer(p(0), a(0), a(1), amt(4)));
        assert_eq!(object.read(a(0)), amt(6));
        assert_eq!(object.read(a(1)), amt(14));
        // Insufficient balance.
        assert!(!object.transfer(p(0), a(0), a(1), amt(7)));
        // Not the owner.
        assert!(!object.transfer(p(0), a(1), a(0), amt(1)));
        // Unknown accounts.
        assert!(!object.transfer(p(0), a(9), a(0), amt(1)));
        assert!(!object.transfer(p(0), a(0), a(9), amt(1)));
        assert_eq!(object.read(a(9)), amt(0));
    }

    #[test]
    fn incoming_funds_are_spendable() {
        let object = SnapshotAssetTransfer::blocking_uniform(2, amt(10));
        assert!(object.transfer(p(0), a(0), a(1), amt(10)));
        assert!(object.transfer(p(1), a(1), a(0), amt(20)));
        assert_eq!(object.read(a(0)), amt(20));
        assert_eq!(object.read(a(1)), amt(0));
    }

    #[test]
    #[should_panic(expected = "single-owner")]
    fn rejects_shared_owner_maps() {
        let owners = OwnerMap::builder().account(a(0), [p(0), p(1)]).build();
        let _ = SnapshotAssetTransfer::wait_free(2, [(a(0), amt(4))], owners);
    }

    #[test]
    fn concurrent_spenders_preserve_supply_and_nonnegativity() {
        use std::sync::Arc as StdArc;
        use std::thread;
        const N: usize = 4;
        const OPS: u64 = 120;
        let object = StdArc::new(SnapshotAssetTransfer::wait_free_uniform(N, amt(50)));
        let handles: Vec<_> = (0..N as u32)
            .map(|i| {
                let object = StdArc::clone(&object);
                thread::spawn(move || {
                    let mut successes = 0u64;
                    for round in 0..OPS {
                        let dest = a((i + 1 + (round % (N as u64 - 1)) as u32) % N as u32);
                        if object.transfer(p(i), a(i), dest, amt(round % 5)) {
                            successes += 1;
                        }
                        // Balances must never be negative (they are u64 by
                        // construction, but the balance computation would
                        // panic on violation).
                        let _ = object.read(a(i));
                    }
                    successes
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        let total: Amount = (0..N as u32).map(|i| object.read(a(i))).sum();
        assert_eq!(total, amt(50 * N as u64));
    }

    #[test]
    fn owner_map_accessor_and_debug() {
        let object = SnapshotAssetTransfer::wait_free_uniform(2, amt(1));
        assert_eq!(object.owners().sharedness(), 1);
        assert!(format!("{object:?}").contains("acct0"));
    }
}
