//! Figure 2: wait-free consensus among `k` processes from a single
//! `k`-shared asset-transfer object (the lower bound of Theorem 2).
//!
//! `k` processes share an account `a` with initial balance `2k`. Process
//! `p ∈ {1..k}` (1-based, as in the paper) announces its proposal in a
//! register and then tries to withdraw `2k − p`:
//!
//! * any two withdrawals sum to more than `2k`, so **only the first can
//!   succeed**;
//! * the remaining balance `2k − (2k − q) = q` uniquely identifies the
//!   winner `q`, whose announced value everyone decides.
//!
//! ```text
//! Upon propose(v):
//!   R[p].write(v)
//!   AT.transfer(a, s, 2k − p)
//!   return R[AT.read(a)].read()
//! ```

use crate::object::SharedAssetTransfer;
use crate::register::RegisterArray;
use at_model::{AccountId, Amount, OwnerMap, ProcessId};
use std::fmt;
use std::sync::Arc;

/// A consensus object for `k` processes built from registers and one
/// `k`-shared asset-transfer object, exactly as in Figure 2.
///
/// # Example
///
/// ```
/// use at_model::ProcessId;
/// use at_sharedmem::figure2::TransferConsensus;
/// use at_sharedmem::object::MutexAssetTransfer;
///
/// let consensus = TransferConsensus::new(3, |ledger| MutexAssetTransfer::new(ledger));
/// let d0 = consensus.propose(ProcessId::new(0), "alpha");
/// let d1 = consensus.propose(ProcessId::new(1), "beta");
/// assert_eq!(d0, d1); // agreement
/// ```
pub struct TransferConsensus<V, O> {
    k: usize,
    registers: RegisterArray<V>,
    object: Arc<O>,
    account_a: AccountId,
    account_s: AccountId,
}

impl<V: Clone + Send, O: SharedAssetTransfer> TransferConsensus<V, O> {
    /// Creates the consensus object for `k` processes (`p0 … p(k−1)`).
    ///
    /// `make_object` receives the required initial state — account `a`
    /// with balance `2k` owned by all `k` processes plus a sink account
    /// `s` — and returns the `k`-shared asset-transfer object to run the
    /// protocol on.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new<F>(k: usize, make_object: F) -> Self
    where
        F: FnOnce(at_model::Ledger) -> O,
    {
        assert!(k > 0, "consensus requires at least one process");
        let account_a = AccountId::new(0);
        let account_s = AccountId::new(1);
        let mut owners = OwnerMap::new();
        for process in ProcessId::all(k) {
            owners.add_owner(account_a, process);
        }
        owners.add_unowned(account_s);
        let ledger = at_model::Ledger::new(
            [
                (account_a, Amount::new(2 * k as u64)),
                (account_s, Amount::ZERO),
            ],
            owners,
        );
        TransferConsensus {
            k,
            registers: RegisterArray::new(k),
            object: Arc::new(make_object(ledger)),
            account_a,
            account_s,
        }
    }

    /// The number of participating processes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying asset-transfer object (for inspection in tests).
    pub fn object(&self) -> &Arc<O> {
        &self.object
    }

    /// `propose(v)` for process `process` (0-based; mapped to the paper's
    /// 1-based `p = index + 1`).
    ///
    /// # Panics
    ///
    /// Panics when `process` is not one of the `k` participants, or if the
    /// underlying object violates its specification (a safety-violation
    /// signal in tests, not an expected runtime condition).
    pub fn propose(&self, process: ProcessId, value: V) -> V {
        let index = process.as_usize();
        assert!(index < self.k, "process {process} is not a participant");
        let p = (index + 1) as u64; // the paper's 1-based process id

        // Line 1: announce the proposal.
        self.registers.write(index, value);

        // Line 2: try to withdraw 2k − p.
        let amount = Amount::new(2 * self.k as u64 - p);
        let _ = self
            .object
            .transfer(process, self.account_a, self.account_s, amount);

        // Line 3: the remaining balance identifies the winner q (1-based).
        let q = self.object.read(self.account_a).units();
        assert!(
            q >= 1 && q <= self.k as u64,
            "object violated the type: residual balance {q}"
        );
        self.registers
            .read((q - 1) as usize)
            .expect("winner announced before transferring")
    }
}

impl<V: Clone + Send, O: SharedAssetTransfer> fmt::Debug for TransferConsensus<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransferConsensus(k={}, balance(a)={})",
            self.k,
            self.object.read(self.account_a)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MutexAssetTransfer;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_first_proposal_wins() {
        let consensus = TransferConsensus::new(3, MutexAssetTransfer::new);
        assert_eq!(consensus.propose(ProcessId::new(1), 'b'), 'b');
        assert_eq!(consensus.propose(ProcessId::new(0), 'a'), 'b');
        assert_eq!(consensus.propose(ProcessId::new(2), 'c'), 'b');
    }

    #[test]
    fn k_one_decides_own_value() {
        let consensus = TransferConsensus::new(1, MutexAssetTransfer::new);
        assert_eq!(consensus.propose(ProcessId::new(0), 99u32), 99);
        assert_eq!(consensus.k(), 1);
    }

    #[test]
    #[should_panic(expected = "not a participant")]
    fn non_participant_rejected() {
        let consensus = TransferConsensus::new(2, MutexAssetTransfer::new);
        let _ = consensus.propose(ProcessId::new(5), 0u8);
    }

    #[test]
    fn concurrent_agreement_validity_termination() {
        for trial in 0..30 {
            let k = 6;
            let consensus = Arc::new(TransferConsensus::new(k, MutexAssetTransfer::new));
            let handles: Vec<_> = (0..k as u32)
                .map(|i| {
                    let consensus = Arc::clone(&consensus);
                    thread::spawn(move || consensus.propose(ProcessId::new(i), i * 10))
                })
                .collect();
            let decisions: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let unique: HashSet<_> = decisions.iter().copied().collect();
            assert_eq!(unique.len(), 1, "trial {trial}: disagreement {decisions:?}");
            let decided = decisions[0];
            assert!(
                decided.is_multiple_of(10) && decided < k as u32 * 10,
                "validity"
            );
        }
    }

    #[test]
    fn exactly_one_withdrawal_succeeds() {
        let k = 4;
        let consensus = Arc::new(TransferConsensus::new(k, MutexAssetTransfer::new));
        let handles: Vec<_> = (0..k as u32)
            .map(|i| {
                let consensus = Arc::clone(&consensus);
                thread::spawn(move || consensus.propose(ProcessId::new(i), i))
            })
            .collect();
        for h in handles {
            let _ = h.join().unwrap();
        }
        // Residual balance on `a` is the winner's 1-based id; the sink got
        // 2k − q.
        let object = consensus.object();
        let q = object.read(AccountId::new(0)).units();
        let sink = object.read(AccountId::new(1)).units();
        assert_eq!(q + sink, 2 * k as u64);
        assert!(q >= 1 && q <= k as u64);
    }

    #[test]
    fn debug_renders() {
        let consensus: TransferConsensus<u8, _> =
            TransferConsensus::new(2, MutexAssetTransfer::new);
        assert!(format!("{consensus:?}").contains("k=2"));
    }
}
