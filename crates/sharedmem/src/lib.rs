//! # at-sharedmem — the paper's shared-memory results, executable
//!
//! This crate implements Sections 2–4 of *The Consensus Number of a
//! Cryptocurrency*: the shared-memory substrate (atomic registers, atomic
//! snapshots, `k`-consensus objects) and the three algorithms built on it:
//!
//! * [`figure1`] — wait-free asset transfer from atomic snapshots alone
//!   (consensus number **1**, Theorem 1);
//! * [`figure2`] — wait-free consensus among `k` processes from a single
//!   `k`-shared asset-transfer object (consensus number ≥ `k`, Lemma 1);
//! * [`figure3`] — a wait-free `k`-shared asset-transfer object from
//!   `k`-consensus objects and registers (consensus number ≤ `k`,
//!   Lemma 2).
//!
//! Together, Figures 2 and 3 pin the consensus number of a `k`-shared
//! asset-transfer object at exactly `k` (Theorem 2).
//!
//! All objects implement [`object::SharedAssetTransfer`]; the
//! [`object::MutexAssetTransfer`] reference implementation doubles as the
//! linearizability oracle. [`harness`] runs randomized concurrent
//! workloads against any object and records [`at_model::History`]s for the
//! linearizability checker.
//!
//! # Example
//!
//! ```
//! use at_model::{AccountId, Amount, ProcessId};
//! use at_sharedmem::figure1::SnapshotAssetTransfer;
//! use at_sharedmem::object::SharedAssetTransfer;
//!
//! let object = SnapshotAssetTransfer::wait_free_uniform(2, Amount::new(10));
//! assert!(object.transfer(
//!     ProcessId::new(0),
//!     AccountId::new(0),
//!     AccountId::new(1),
//!     Amount::new(3),
//! ));
//! assert_eq!(object.read(AccountId::new(1)), Amount::new(13));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod harness;
pub mod kconsensus;
pub mod object;
pub mod register;
pub mod snapshot;

pub use figure1::SnapshotAssetTransfer;
pub use figure2::TransferConsensus;
pub use figure3::KSharedAssetTransfer;
pub use kconsensus::{KConsensus, KConsensusList};
pub use object::{MutexAssetTransfer, SharedAssetTransfer};
pub use snapshot::{AfekSnapshot, AtomicSnapshot, LockSnapshot};
