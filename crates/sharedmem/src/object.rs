//! The shared-memory asset-transfer object interface and the trivially
//! linearizable reference implementation.

use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId};
use parking_lot::Mutex;
use std::fmt;

/// A linearizable shared-memory asset-transfer object (the type of
/// Section 2.2).
///
/// `process` identifies the invoking process; the object validates
/// ownership per `Δ` (a non-owner's transfer returns `false`). Processes
/// are sequential: each process has at most one operation in flight.
pub trait SharedAssetTransfer: Send + Sync {
    /// `transfer(source, destination, amount)` invoked by `process`.
    /// Returns `true` on success, `false` when `process` does not own
    /// `source` or the balance is insufficient.
    fn transfer(
        &self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> bool;

    /// `read(account)`: the account's balance.
    fn read(&self, account: AccountId) -> Amount;
}

/// Reference implementation: the sequential specification behind a single
/// mutex. Trivially linearizable and wait-free modulo the lock; used as
/// the test oracle, as the object under Figure 2's reduction, and as a
/// baseline in benchmarks.
///
/// # Example
///
/// ```
/// use at_model::{AccountId, Amount, Ledger, ProcessId};
/// use at_sharedmem::object::{MutexAssetTransfer, SharedAssetTransfer};
///
/// let object = MutexAssetTransfer::new(Ledger::uniform(2, Amount::new(10)));
/// let p0 = ProcessId::new(0);
/// assert!(object.transfer(p0, AccountId::new(0), AccountId::new(1), Amount::new(4)));
/// assert_eq!(object.read(AccountId::new(1)), Amount::new(14));
/// ```
pub struct MutexAssetTransfer {
    ledger: Mutex<Ledger>,
}

impl MutexAssetTransfer {
    /// Creates the object from an initial ledger state.
    pub fn new(initial: Ledger) -> Self {
        MutexAssetTransfer {
            ledger: Mutex::new(initial),
        }
    }

    /// Convenience constructor mirroring [`Ledger::new`].
    pub fn with_accounts<I>(initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        MutexAssetTransfer::new(Ledger::new(initial, owners))
    }

    /// A copy of the current sequential state (for assertions).
    pub fn state(&self) -> Ledger {
        self.ledger.lock().clone()
    }
}

impl SharedAssetTransfer for MutexAssetTransfer {
    fn transfer(
        &self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> bool {
        self.ledger
            .lock()
            .transfer(process, source, destination, amount)
            .is_ok()
    }

    fn read(&self, account: AccountId) -> Amount {
        self.ledger.lock().read(account)
    }
}

impl fmt::Debug for MutexAssetTransfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MutexAssetTransfer({:?})", self.state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn delegates_to_spec() {
        let object = MutexAssetTransfer::new(Ledger::uniform(2, Amount::new(10)));
        assert!(object.transfer(p(0), a(0), a(1), Amount::new(10)));
        assert!(!object.transfer(p(0), a(0), a(1), Amount::new(1)));
        assert!(!object.transfer(p(0), a(1), a(0), Amount::new(1)));
        assert_eq!(object.read(a(0)), Amount::ZERO);
        assert_eq!(object.read(a(1)), Amount::new(20));
    }

    #[test]
    fn with_accounts_constructor() {
        let owners = OwnerMap::single_owner([(a(0), p(0))]);
        let object = MutexAssetTransfer::with_accounts([(a(0), Amount::new(5))], owners);
        assert_eq!(object.read(a(0)), Amount::new(5));
        assert!(format!("{object:?}").contains("acct0"));
    }

    #[test]
    fn concurrent_usage_preserves_supply() {
        use std::sync::Arc;
        use std::thread;
        let object = Arc::new(MutexAssetTransfer::new(Ledger::uniform(
            4,
            Amount::new(100),
        )));
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let object = Arc::clone(&object);
                thread::spawn(move || {
                    for round in 0..50u64 {
                        let dest = a((i + 1) % 4);
                        object.transfer(p(i), a(i), dest, Amount::new(round % 7));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(object.state().total_supply(), Amount::new(400));
    }
}
