//! Figure 3: a wait-free `k`-shared asset-transfer object from
//! `k`-consensus objects and registers (the upper bound of Theorem 2).
//!
//! Every account `a` has an announcement register array `R_a` (one slot
//! per process) and an unbounded series of `k`-consensus objects
//! `kC_a[0], kC_a[1], …`. The up-to-`k` owners of `a` agree on the order
//! of outgoing transfers round by round; decided transfer–result pairs are
//! published in an atomic snapshot `AS` (one slot per process holding its
//! `hist` set). Announcing in `R_a` before proposing gives the *helping*
//! mechanism that makes the object wait-free: owners propose the oldest
//! announced-but-uncommitted transfer, not necessarily their own.

use crate::kconsensus::KConsensusList;
use crate::object::SharedAssetTransfer;
use crate::register::RegisterArray;
use crate::snapshot::{AtomicSnapshot, LockSnapshot};
use at_model::spec::balance_from_transfers;
use at_model::{AccountId, Amount, OwnerMap, ProcessId, Round, SeqNo, Transfer, TransferId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A transfer–result pair `((a,b,x,s,r), result)` as decided by a round of
/// `k`-consensus.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct DecidedTransfer {
    /// The transfer (its `seq` field carries the announcement round `r`).
    pub transfer: Transfer,
    /// Whether the transfer was decided successful.
    pub success: bool,
}

/// Per-process published history: the set of decided transfers this
/// process has observed and published.
type Hist = Arc<BTreeSet<DecidedTransfer>>;

/// Per-account shared coordination state.
struct AccountShared {
    /// `R_a[i]`: announcement registers.
    announcements: RegisterArray<Transfer>,
    /// `kC_a[i]`: the series of k-consensus objects.
    consensus: KConsensusList<DecidedTransfer>,
}

/// Per-process, per-account local state (`committed_a`, `round_a`).
#[derive(Default)]
struct AccountLocal {
    committed: BTreeSet<TransferId>,
    round: Round,
}

/// Per-process local state (`hist` and the per-account locals).
#[derive(Default)]
struct Local {
    hist: BTreeSet<DecidedTransfer>,
    accounts: BTreeMap<AccountId, AccountLocal>,
    seq: SeqNo,
}

/// The Figure 3 object.
///
/// # Example
///
/// ```
/// use at_model::{AccountId, Amount, OwnerMap, ProcessId};
/// use at_sharedmem::figure3::KSharedAssetTransfer;
/// use at_sharedmem::object::SharedAssetTransfer;
///
/// // One account shared by two processes plus a sink.
/// let shared = AccountId::new(0);
/// let sink = AccountId::new(1);
/// let mut owners = OwnerMap::new();
/// owners.add_owner(shared, ProcessId::new(0));
/// owners.add_owner(shared, ProcessId::new(1));
/// owners.add_unowned(sink);
///
/// let object = KSharedAssetTransfer::new(2, [(shared, Amount::new(10))], owners);
/// assert!(object.transfer(ProcessId::new(0), shared, sink, Amount::new(6)));
/// assert!(!object.transfer(ProcessId::new(1), shared, sink, Amount::new(6)));
/// assert_eq!(object.read(sink), Amount::new(6));
/// ```
pub struct KSharedAssetTransfer {
    /// `AS`: one slot per process holding its published `hist`.
    snapshot: LockSnapshot<Hist>,
    accounts: BTreeMap<AccountId, AccountShared>,
    initial: BTreeMap<AccountId, Amount>,
    owners: OwnerMap,
    locals: Vec<Mutex<Local>>,
}

impl KSharedAssetTransfer {
    /// Creates the object for `n` processes with the given initial
    /// balances and (arbitrary-sharedness) owner map.
    pub fn new<I>(n: usize, initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        let mut balances: BTreeMap<AccountId, Amount> = initial.into_iter().collect();
        for account in owners.accounts() {
            balances.entry(account).or_insert(Amount::ZERO);
        }
        let k = owners.sharedness().max(1);
        let accounts = balances
            .keys()
            .map(|&account| {
                (
                    account,
                    AccountShared {
                        announcements: RegisterArray::new(n),
                        consensus: KConsensusList::new(k),
                    },
                )
            })
            .collect();
        KSharedAssetTransfer {
            snapshot: LockSnapshot::new(n, Arc::new(BTreeSet::new())),
            accounts,
            initial: balances,
            owners,
            locals: (0..n).map(|_| Mutex::new(Local::default())).collect(),
        }
    }

    /// The owner map.
    pub fn owners(&self) -> &OwnerMap {
        &self.owners
    }

    /// The sharedness `k` of the object.
    pub fn sharedness(&self) -> usize {
        self.owners.sharedness()
    }

    /// `balance(a, snapshot)` per Figure 3: initial plus successful
    /// incoming minus successful outgoing over the union of published
    /// hist sets.
    fn balance(&self, account: AccountId, view: &[Hist]) -> Amount {
        let initial = self.initial.get(&account).copied().unwrap_or(Amount::ZERO);
        // The same decided transfer may appear in several hist slots; the
        // union must be deduplicated before summation.
        let unioned: BTreeSet<&DecidedTransfer> = view.iter().flat_map(|h| h.iter()).collect();
        let successful: Vec<Transfer> = unioned
            .into_iter()
            .filter(|d| d.success)
            .map(|d| d.transfer)
            .collect();
        balance_from_transfers(account, initial, successful.iter())
            .expect("figure 3 maintains non-negative balances")
    }

    /// `collect(a)` of Figure 3: read all announcement registers for `a`.
    fn collect(&self, account: AccountId) -> Vec<Transfer> {
        self.accounts[&account]
            .announcements
            .collect()
            .into_iter()
            .flatten()
            .collect()
    }

    /// `proposal(req, snapshot)`: equip `req` with a success/failure flag
    /// according to the balance in `snapshot`.
    fn proposal(&self, req: Transfer, view: &[Hist]) -> DecidedTransfer {
        DecidedTransfer {
            transfer: req,
            success: self.balance(req.source, view) >= req.amount,
        }
    }
}

impl SharedAssetTransfer for KSharedAssetTransfer {
    fn transfer(
        &self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> bool {
        // Lines 1-2: ownership (and account-existence) check.
        if !self.owners.is_owner(process, source) || !self.initial.contains_key(&destination) {
            return false;
        }
        let mut local = self.locals[process.as_usize()].lock();
        let local = &mut *local;
        let account_local = local.accounts.entry(source).or_default();
        let shared = &self.accounts[&source];

        // Line 3: the announced transfer carries the announcement round.
        local.seq = local.seq.next();
        let tx = Transfer::new(source, destination, amount, process, local.seq);
        // Figure 3 orders "oldest first" by announcement round (ties by
        // process id); we encode the round in the announcement wrapper.
        let announced_round = account_local.round;

        // Line 4: announce.
        shared
            .announcements
            .write(process.as_usize(), with_round(tx, announced_round));

        // Line 5: collect pending transfers.
        let mut collected: Vec<Transfer> = self
            .collect(source)
            .into_iter()
            .filter(|t| !account_local.committed.contains(&announced_id(t)))
            .collect();

        let my_announcement = with_round(tx, announced_round);
        let mut my_result: Option<bool> = None;

        // Lines 6-14: agree round by round until our transfer commits.
        // (The loop guard `tx ∈ collected` of the paper is equivalent to
        // "our transfer has no decision yet": `retain` below removes a
        // transfer exactly when its decision is observed.)
        while my_result.is_none() {
            debug_assert!(
                collected.contains(&my_announcement),
                "announced transfer disappeared without a decision"
            );
            // Line 7: the oldest collected transfer (round, then pid).
            let req = *collected
                .iter()
                .min_by_key(|t| (t.seq.value(), t.originator.index()))
                .expect("own announcement keeps collected non-empty");

            // Line 8: flag it against the current snapshot.
            let view = self.snapshot.snapshot();
            let prop = self.proposal(req, &view);

            // Line 9: one k-consensus invocation for this round.
            let decision = shared
                .consensus
                .round(account_local.round.value())
                .propose(prop)
                .expect("at most k owners propose per round");

            // Lines 10-11: publish the decision.
            local.hist.insert(decision);
            self.snapshot
                .update(process.as_usize(), Arc::new(local.hist.clone()));

            // Lines 12-14: mark committed, refresh, advance the round.
            account_local.committed.insert(decision.transfer.id());
            collected.retain(|t| *t != decision.transfer);
            if decision.transfer == my_announcement {
                my_result = Some(decision.success);
            }
            account_local.round = account_local.round.next();
        }

        // Lines 15-18: our own decided flag is the response.
        my_result.expect("loop exits only with a decision")
    }

    fn read(&self, account: AccountId) -> Amount {
        // Line 19.
        let view = self.snapshot.snapshot();
        self.balance(account, &view)
    }
}

/// Announcements are keyed by `(originator, seq)`; the announcement round
/// replaces `seq` in the *published wrapper* so that "oldest" ordering per
/// Figure 3 works, while the original sequence number keeps the identity
/// unique. We fold both into the wrapper: round goes into `seq`'s high
/// bits would be fragile, so instead identity = (originator, original
/// seq); the wrapper keeps the original transfer and we track rounds
/// separately.
///
/// Concretely: `with_round` stores the announcement round in the
/// transfer's `seq` field *of the announcement copy only* and
/// `announced_id` recovers a unique key `(originator, round)` — unique
/// because a process announces at most one transfer per account round.
fn with_round(tx: Transfer, round: Round) -> Transfer {
    Transfer::new(
        tx.source,
        tx.destination,
        tx.amount,
        tx.originator,
        SeqNo::new(round.value()),
    )
}

fn announced_id(tx: &Transfer) -> TransferId {
    tx.id()
}

impl fmt::Debug for KSharedAssetTransfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let view = self.snapshot.snapshot();
        f.debug_map()
            .entries(
                self.initial
                    .keys()
                    .map(|&account| (account, self.balance(account, &view).units())),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn amt(x: u64) -> Amount {
        Amount::new(x)
    }

    /// k owners share account 0; account 1 is a per-test sink; accounts
    /// 2..2+n are singly owned.
    fn shared_object(n: usize, k: usize, balance: u64) -> KSharedAssetTransfer {
        let mut owners = OwnerMap::new();
        for i in 0..k {
            owners.add_owner(a(0), p(i as u32));
        }
        owners.add_unowned(a(1));
        let initial = [(a(0), amt(balance)), (a(1), amt(0))];
        KSharedAssetTransfer::new(n, initial, owners)
    }

    #[test]
    fn sequential_semantics() {
        let object = shared_object(2, 2, 10);
        assert_eq!(object.sharedness(), 2);
        assert!(object.transfer(p(0), a(0), a(1), amt(4)));
        assert!(object.transfer(p(1), a(0), a(1), amt(6)));
        assert!(!object.transfer(p(0), a(0), a(1), amt(1)));
        assert_eq!(object.read(a(0)), amt(0));
        assert_eq!(object.read(a(1)), amt(10));
    }

    #[test]
    fn non_owner_and_unknown_accounts_fail() {
        let object = shared_object(3, 2, 10);
        assert!(!object.transfer(p(2), a(0), a(1), amt(1)));
        assert!(!object.transfer(p(0), a(9), a(1), amt(1)));
        assert!(!object.transfer(p(0), a(0), a(9), amt(1)));
        assert_eq!(object.read(a(0)), amt(10));
    }

    #[test]
    fn concurrent_owners_never_overdraw() {
        for trial in 0..10 {
            let k = 4;
            let object = Arc::new(shared_object(k, k, 100));
            let handles: Vec<_> = (0..k as u32)
                .map(|i| {
                    let object = Arc::clone(&object);
                    thread::spawn(move || {
                        let mut successes = 0u64;
                        for _ in 0..10 {
                            if object.transfer(p(i), a(0), a(1), amt(7)) {
                                successes += 1;
                            }
                        }
                        successes
                    })
                })
                .collect();
            let total_successes: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            // 100 / 7 = 14 transfers fit.
            assert_eq!(total_successes, 14, "trial {trial}");
            assert_eq!(object.read(a(0)), amt(100 - 14 * 7));
            assert_eq!(object.read(a(1)), amt(14 * 7));
        }
    }

    #[test]
    fn contended_exact_balance_admits_exactly_one() {
        // The Figure 2 scenario: balance 2k, withdrawals 2k−p.
        for trial in 0..20 {
            let k = 5;
            let object = Arc::new(shared_object(k, k, 2 * k as u64));
            let handles: Vec<_> = (0..k as u32)
                .map(|i| {
                    let object = Arc::clone(&object);
                    thread::spawn(move || {
                        let amount = amt(2 * k as u64 - (i as u64 + 1));
                        object.transfer(p(i), a(0), a(1), amount)
                    })
                })
                .collect();
            let successes = handles
                .into_iter()
                .filter(|_| true)
                .map(|h| h.join().unwrap())
                .filter(|&ok| ok)
                .count();
            assert_eq!(successes, 1, "trial {trial}");
            let residue = object.read(a(0)).units();
            assert!((1..=k as u64).contains(&residue), "trial {trial}");
        }
    }

    #[test]
    fn helping_commits_other_owners_announcements() {
        // p0 announces and commits its own transfer; p1's subsequent
        // transfer must first help commit anything pending, then commit
        // its own. Exercised implicitly; here we just interleave heavily.
        let object = Arc::new(shared_object(2, 2, 1000));
        let t0 = {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                (0..50)
                    .filter(|_| object.transfer(p(0), a(0), a(1), amt(1)))
                    .count()
            })
        };
        let t1 = {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                (0..50)
                    .filter(|_| object.transfer(p(1), a(0), a(1), amt(1)))
                    .count()
            })
        };
        assert_eq!(t0.join().unwrap() + t1.join().unwrap(), 100);
        assert_eq!(object.read(a(1)), amt(100));
    }

    #[test]
    fn reads_interleave_with_transfers() {
        let object = Arc::new(shared_object(3, 2, 50));
        let writer = {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                for _ in 0..25 {
                    object.transfer(p(0), a(0), a(1), amt(2));
                }
            })
        };
        let reader = {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                let mut last = amt(0);
                for _ in 0..100 {
                    let sink = object.read(a(1));
                    assert!(sink >= last, "sink balance decreased");
                    last = sink;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(object.read(a(0)), amt(0));
        assert_eq!(object.read(a(1)), amt(50));
    }

    #[test]
    fn debug_and_owner_accessors() {
        let object = shared_object(2, 2, 5);
        assert_eq!(object.owners().owner_count(a(0)), 2);
        assert!(format!("{object:?}").contains("acct0"));
    }
}
