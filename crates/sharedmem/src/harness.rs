//! Concurrent workload harness: drives any [`SharedAssetTransfer`] object
//! from multiple threads, records the [`History`], and hands it to the
//! linearizability checker.
//!
//! This is the machinery behind experiment **F1** (Figure 1's correctness)
//! and **F3** (Figure 3's correctness) in DESIGN.md.

use crate::object::SharedAssetTransfer;
use at_model::history::{Operation, Recorder, Response};
use at_model::{AccountId, Amount, CheckOutcome, History, Ledger, OwnerMap, ProcessId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;

/// Configuration of a randomized concurrent workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of threads (= processes).
    pub processes: usize,
    /// Operations per process.
    pub ops_per_process: usize,
    /// Initial balance of each account.
    pub initial_balance: Amount,
    /// Maximum single-transfer amount.
    pub max_amount: u64,
    /// Fraction (0–100) of operations that are reads.
    pub read_percent: u8,
    /// RNG seed (per-process streams derive from it).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            processes: 3,
            ops_per_process: 6,
            initial_balance: Amount::new(20),
            max_amount: 10,
            read_percent: 30,
            seed: 0,
        }
    }
}

/// Runs a random single-owner workload against `object` and returns the
/// recorded history together with the initial ledger used.
///
/// Accounts follow the uniform topology: account `i` owned by process `i`.
pub fn run_uniform_workload<O>(object: Arc<O>, config: &WorkloadConfig) -> (History, Ledger)
where
    O: SharedAssetTransfer + 'static,
{
    let n = config.processes;
    let initial = Ledger::new(
        AccountId::all(n).map(|a| (a, config.initial_balance)),
        OwnerMap::one_account_per_process(n),
    );
    let recorder = Recorder::new();

    let threads: Vec<_> = (0..n)
        .map(|i| {
            let object = Arc::clone(&object);
            let recorder = recorder.clone();
            let config = config.clone();
            thread::spawn(move || {
                let process = ProcessId::new(i as u32);
                let mut rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
                for _ in 0..config.ops_per_process {
                    if rng.gen_range(0..100u8) < config.read_percent {
                        let account = AccountId::new(rng.gen_range(0..n) as u32);
                        let id = recorder.invoke(process, Operation::Read { account });
                        let balance = object.read(account);
                        recorder.respond(id, Response::Read(balance));
                    } else {
                        let source = AccountId::new(i as u32);
                        let mut dest_index = rng.gen_range(0..n);
                        if dest_index == i && n > 1 {
                            dest_index = (dest_index + 1) % n;
                        }
                        let destination = AccountId::new(dest_index as u32);
                        let amount = Amount::new(rng.gen_range(0..=config.max_amount));
                        let id = recorder.invoke(
                            process,
                            Operation::Transfer {
                                source,
                                destination,
                                amount,
                            },
                        );
                        let ok = object.transfer(process, source, destination, amount);
                        recorder.respond(id, Response::Transfer(ok));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("workload thread panicked");
    }
    (recorder.into_history(), initial)
}

/// Runs a random workload on a `k`-shared account: `k` owner processes all
/// debit account 0; account 1 is the sink.
pub fn run_shared_account_workload<O>(
    object: Arc<O>,
    k: usize,
    ops_per_process: usize,
    initial_balance: Amount,
    seed: u64,
) -> (History, Ledger)
where
    O: SharedAssetTransfer + 'static,
{
    let shared = AccountId::new(0);
    let sink = AccountId::new(1);
    let mut owners = OwnerMap::new();
    for process in ProcessId::all(k) {
        owners.add_owner(shared, process);
    }
    owners.add_unowned(sink);
    let initial = Ledger::new([(shared, initial_balance), (sink, Amount::ZERO)], owners);
    let recorder = Recorder::new();

    let threads: Vec<_> = (0..k)
        .map(|i| {
            let object = Arc::clone(&object);
            let recorder = recorder.clone();
            thread::spawn(move || {
                let process = ProcessId::new(i as u32);
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xC0FFEE));
                for _ in 0..ops_per_process {
                    if rng.gen_bool(0.25) {
                        let account = if rng.gen_bool(0.5) { shared } else { sink };
                        let id = recorder.invoke(process, Operation::Read { account });
                        let balance = object.read(account);
                        recorder.respond(id, Response::Read(balance));
                    } else {
                        let amount = Amount::new(rng.gen_range(1..=5));
                        let id = recorder.invoke(
                            process,
                            Operation::Transfer {
                                source: shared,
                                destination: sink,
                                amount,
                            },
                        );
                        let ok = object.transfer(process, shared, sink, amount);
                        recorder.respond(id, Response::Transfer(ok));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("workload thread panicked");
    }
    (recorder.into_history(), initial)
}

/// Asserts that the recorded history linearizes; panics with the history
/// text otherwise.
///
/// # Panics
///
/// Panics when the history is not linearizable (that is the point).
pub fn assert_linearizable(history: &History, initial: &Ledger) {
    match at_model::linearizable(history, initial) {
        CheckOutcome::Linearizable { .. } => {}
        CheckOutcome::NotLinearizable => {
            panic!("history is not linearizable:\n{history}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::SnapshotAssetTransfer;
    use crate::figure3::KSharedAssetTransfer;
    use crate::object::MutexAssetTransfer;

    #[test]
    fn mutex_object_linearizes() {
        for seed in 0..8 {
            let config = WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            };
            let object = Arc::new(MutexAssetTransfer::new(Ledger::uniform(
                config.processes,
                config.initial_balance,
            )));
            let (history, initial) = run_uniform_workload(object, &config);
            assert_linearizable(&history, &initial);
        }
    }

    #[test]
    fn figure1_wait_free_linearizes() {
        for seed in 0..8 {
            let config = WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            };
            let object = Arc::new(SnapshotAssetTransfer::wait_free_uniform(
                config.processes,
                config.initial_balance,
            ));
            let (history, initial) = run_uniform_workload(object, &config);
            assert_linearizable(&history, &initial);
        }
    }

    #[test]
    fn figure1_blocking_linearizes() {
        for seed in 0..8 {
            let config = WorkloadConfig {
                seed,
                ..WorkloadConfig::default()
            };
            let object = Arc::new(SnapshotAssetTransfer::blocking_uniform(
                config.processes,
                config.initial_balance,
            ));
            let (history, initial) = run_uniform_workload(object, &config);
            assert_linearizable(&history, &initial);
        }
    }

    #[test]
    fn figure3_shared_account_linearizes() {
        for seed in 0..8 {
            let k = 3;
            let shared = AccountId::new(0);
            let sink = AccountId::new(1);
            let mut owners = OwnerMap::new();
            for process in ProcessId::all(k) {
                owners.add_owner(shared, process);
            }
            owners.add_unowned(sink);
            let object = Arc::new(KSharedAssetTransfer::new(
                k,
                [(shared, Amount::new(15))],
                owners,
            ));
            let (history, initial) =
                run_shared_account_workload(object, k, 5, Amount::new(15), seed);
            assert_linearizable(&history, &initial);
        }
    }

    #[test]
    fn workload_config_default_is_sane() {
        let config = WorkloadConfig::default();
        assert!(config.processes >= 2);
        assert!(config.read_percent <= 100);
    }
}
