//! Atomic snapshot objects (Afek, Attiya, Dolev, Gafni, Merritt, Shavit,
//! JACM 1993).
//!
//! An atomic snapshot is a vector of `N` shared slots supporting two
//! linearizable operations: `update(i, v)` on a single slot and
//! `snapshot()` of the whole vector. Figure 1 of the paper builds asset
//! transfer directly on this object; Figure 3 uses one to publish decided
//! transfers.
//!
//! Two implementations:
//!
//! * [`LockSnapshot`] — a sequence of slots behind one `RwLock`; trivially
//!   linearizable, blocking. The practical choice, and the reference.
//! * [`AfekSnapshot`] — the classical *wait-free* construction from
//!   single-writer registers: double collect until clean, "borrowing" the
//!   embedded snapshot of a writer observed to move twice.

use crate::register::{MutexRegister, Register};
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// An `N`-slot atomic snapshot object.
pub trait AtomicSnapshot<T: Clone>: Send + Sync {
    /// Number of slots.
    fn len(&self) -> usize;

    /// Whether the object has zero slots.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically replaces slot `i` with `value`.
    ///
    /// Only process `i` may call this on its slot (single-writer).
    fn update(&self, i: usize, value: T);

    /// Atomically reads all slots.
    fn snapshot(&self) -> Vec<T>;
}

/// Blocking snapshot: one `RwLock` around the whole vector.
pub struct LockSnapshot<T> {
    slots: RwLock<Vec<T>>,
}

impl<T: Clone + Send + Sync> LockSnapshot<T> {
    /// Creates `n` slots initialised to `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        LockSnapshot {
            slots: RwLock::new(vec![initial; n]),
        }
    }
}

impl<T: Clone + Send + Sync> AtomicSnapshot<T> for LockSnapshot<T> {
    fn len(&self) -> usize {
        self.slots.read().len()
    }

    fn update(&self, i: usize, value: T) {
        self.slots.write()[i] = value;
    }

    fn snapshot(&self) -> Vec<T> {
        self.slots.read().clone()
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for LockSnapshot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockSnapshot({:?})", self.snapshot())
    }
}

/// One cell of the Afek et al. construction: the value, the writer's
/// sequence number, and the snapshot embedded by the writer.
struct Cell<T> {
    value: T,
    seq: u64,
    embedded: Option<Arc<Vec<T>>>,
}

impl<T: Clone> Clone for Cell<T> {
    fn clone(&self) -> Self {
        Cell {
            value: self.value.clone(),
            seq: self.seq,
            embedded: self.embedded.clone(),
        }
    }
}

/// Wait-free atomic snapshot from single-writer atomic registers.
///
/// `snapshot()` repeatedly *double-collects*; a clean double collect (no
/// sequence number changed) is linearizable at the point between the two
/// collects. If some writer is observed to move twice, its second write's
/// embedded snapshot was taken entirely within our interval and is
/// returned instead — the helping mechanism that yields wait-freedom.
///
/// `update(i, v)` takes an embedded snapshot, then writes
/// `(v, seq+1, embedded)` to register `i`.
///
/// # Example
///
/// ```
/// use at_sharedmem::snapshot::{AfekSnapshot, AtomicSnapshot};
///
/// let snap = AfekSnapshot::new(3, 0u64);
/// snap.update(1, 42);
/// assert_eq!(snap.snapshot(), vec![0, 42, 0]);
/// ```
pub struct AfekSnapshot<T> {
    registers: Vec<MutexRegister<Arc<Cell<T>>>>,
}

impl<T: Clone + Send + Sync> AfekSnapshot<T> {
    /// Creates `n` slots initialised to `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        AfekSnapshot {
            registers: (0..n)
                .map(|_| {
                    MutexRegister::new(Arc::new(Cell {
                        value: initial.clone(),
                        seq: 0,
                        embedded: None,
                    }))
                })
                .collect(),
        }
    }

    fn collect(&self) -> Vec<Arc<Cell<T>>> {
        self.registers.iter().map(|r| r.read()).collect()
    }
}

impl<T: Clone + Send + Sync> AtomicSnapshot<T> for AfekSnapshot<T> {
    fn len(&self) -> usize {
        self.registers.len()
    }

    fn update(&self, i: usize, value: T) {
        // Embed a snapshot so concurrent scanners can borrow it.
        let embedded = Arc::new(self.snapshot());
        let seq = self.registers[i].read().seq + 1;
        self.registers[i].write(Arc::new(Cell {
            value,
            seq,
            embedded: Some(embedded),
        }));
    }

    fn snapshot(&self) -> Vec<T> {
        let n = self.len();
        // moved[j] = how many times writer j was seen to change.
        let mut moved = vec![0u32; n];
        let mut previous = self.collect();
        loop {
            let current = self.collect();
            let changed: Vec<usize> = (0..n)
                .filter(|&j| previous[j].seq != current[j].seq)
                .collect();
            if changed.is_empty() {
                // Clean double collect.
                return current.iter().map(|cell| cell.value.clone()).collect();
            }
            for j in changed {
                moved[j] += 1;
                if moved[j] >= 2 {
                    // Writer j completed an entire update within our scan:
                    // its embedded snapshot is linearizable inside our
                    // interval.
                    let embedded = current[j]
                        .embedded
                        .as_ref()
                        .expect("moved-twice writer embedded a snapshot");
                    return embedded.as_ref().clone();
                }
            }
            previous = current;
        }
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for AfekSnapshot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AfekSnapshot({:?})", self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    fn exercise_basic<S: AtomicSnapshot<u64>>(snap: &S) {
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert_eq!(snap.snapshot(), vec![0, 0, 0, 0]);
        snap.update(2, 9);
        snap.update(0, 1);
        assert_eq!(snap.snapshot(), vec![1, 0, 9, 0]);
        snap.update(2, 10);
        assert_eq!(snap.snapshot(), vec![1, 0, 10, 0]);
    }

    #[test]
    fn lock_snapshot_basics() {
        exercise_basic(&LockSnapshot::new(4, 0u64));
    }

    #[test]
    fn afek_snapshot_basics() {
        exercise_basic(&AfekSnapshot::new(4, 0u64));
    }

    /// Monotonic-counter regularity: every writer only increments its own
    /// slot, so snapshots must be pointwise monotonically non-decreasing
    /// in scan order per reader, and no snapshot may "tear" below a value
    /// already observed.
    fn exercise_concurrent<S: AtomicSnapshot<u64> + 'static>(snap: Arc<S>) {
        const WRITERS: usize = 3;
        const INCREMENTS: u64 = 300;
        let stop = Arc::new(AtomicBool::new(false));

        let writer_handles: Vec<_> = (0..WRITERS)
            .map(|i| {
                let snap = Arc::clone(&snap);
                thread::spawn(move || {
                    for v in 1..=INCREMENTS {
                        snap.update(i, v);
                    }
                })
            })
            .collect();

        let reader_handles: Vec<_> = (0..2)
            .map(|_| {
                let snap = Arc::clone(&snap);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = vec![0u64; WRITERS];
                    let mut scans = 0u64;
                    loop {
                        let view = snap.snapshot();
                        for j in 0..WRITERS {
                            assert!(
                                view[j] >= last[j],
                                "snapshot went backwards at slot {j}: {} < {}",
                                view[j],
                                last[j]
                            );
                        }
                        last = view[..WRITERS].to_vec();
                        scans += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    scans
                })
            })
            .collect();

        for w in writer_handles {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in reader_handles {
            assert!(r.join().unwrap() > 0);
        }
        let final_view = snap.snapshot();
        assert_eq!(final_view[..WRITERS], vec![INCREMENTS; WRITERS][..]);
    }

    #[test]
    fn lock_snapshot_concurrent_monotonicity() {
        exercise_concurrent(Arc::new(LockSnapshot::new(4, 0u64)));
    }

    #[test]
    fn afek_snapshot_concurrent_monotonicity() {
        exercise_concurrent(Arc::new(AfekSnapshot::new(4, 0u64)));
    }

    /// Cross-slot consistency: writers publish (round, round) pairs into
    /// two slots they own in lock-step fashion... simplified: a single
    /// writer alternately increments two slots keeping slot0 >= slot1;
    /// every atomic snapshot must observe slot0 >= slot1.
    fn exercise_cross_slot<S: AtomicSnapshot<u64> + 'static>(snap: Arc<S>) {
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let snap = Arc::clone(&snap);
            thread::spawn(move || {
                for v in 1..=500u64 {
                    snap.update(0, v); // slot0 first: slot0 >= slot1 always
                    snap.update(1, v);
                }
            })
        };
        let reader = {
            let snap = Arc::clone(&snap);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let view = snap.snapshot();
                    assert!(
                        view[0] >= view[1],
                        "torn snapshot: slot0={} < slot1={}",
                        view[0],
                        view[1]
                    );
                }
            })
        };
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    }

    #[test]
    fn lock_snapshot_never_tears() {
        exercise_cross_slot(Arc::new(LockSnapshot::new(2, 0u64)));
    }

    #[test]
    fn afek_snapshot_never_tears() {
        exercise_cross_slot(Arc::new(AfekSnapshot::new(2, 0u64)));
    }

    #[test]
    fn debug_impls_render() {
        let lock = LockSnapshot::new(2, 1u8);
        assert!(format!("{lock:?}").contains("LockSnapshot"));
        let afek = AfekSnapshot::new(2, 1u8);
        assert!(format!("{afek:?}").contains("AfekSnapshot"));
    }
}
