//! End-to-end smoke of the chaos runner: real clusters under real
//! nemesis schedules, validated by the shared at-check battery.

use at_chaos::{
    format_nemesis_schedule, run_seeded, run_with_schedule, ChaosConfig, ChaosTransport,
    NemesisChoice,
};
use std::time::Duration;

fn quick_config() -> ChaosConfig {
    ChaosConfig {
        quota: 30,
        disruptions: 3,
        drain_timeout: Duration::from_secs(20),
        ..ChaosConfig::default()
    }
}

#[test]
fn tcp_cluster_survives_a_seeded_nemesis_schedule() {
    let config = quick_config();
    let report = run_seeded(&config, "echo", ChaosTransport::Tcp, 7);
    assert!(
        report.violations.is_empty(),
        "schedule {}: {:?}",
        format_nemesis_schedule(&report.schedule),
        report.violations
    );
    assert!(report.converged);
    assert_eq!(report.dropped_frames, 0);
    assert!(report.submitted > 0);
    assert!(report.committed > 0);
    assert!(!report.unknown);
    // The probe actually recorded the run (submissions, deliveries, and
    // the final pinning reads).
    assert!(report.events_recorded as u64 > report.committed);
}

#[test]
fn mesh_cluster_survives_a_seeded_nemesis_schedule() {
    let config = quick_config();
    let report = run_seeded(&config, "bracha", ChaosTransport::Mesh, 3);
    assert!(
        report.violations.is_empty(),
        "schedule {}: {:?}",
        format_nemesis_schedule(&report.schedule),
        report.violations
    );
    assert!(report.converged);
    assert_eq!(report.dropped_frames, 0);
    // No crash on the mesh, so every acknowledgement must resolve.
    assert_eq!(report.unresolved, 0);
    assert_eq!(report.submitted, report.committed + report.rejected);
}

#[test]
fn tcp_crash_restart_schedule_recovers_and_validates() {
    let config = quick_config();
    // A hand-built schedule that definitely crashes a node mid-traffic.
    let schedule = vec![
        NemesisChoice::Run { ms: 30 },
        NemesisChoice::Heal,
        NemesisChoice::CrashRestart {
            node: 2,
            down_ms: 40,
        },
        NemesisChoice::Run { ms: 40 },
        NemesisChoice::Heal,
        NemesisChoice::Run { ms: 50 },
    ];
    let report = run_with_schedule(&config, "acctorder", ChaosTransport::Tcp, 5, &schedule);
    assert!(
        report.violations.is_empty(),
        "schedule {}: {:?}",
        format_nemesis_schedule(&report.schedule),
        report.violations
    );
    assert!(report.converged, "restarted node must catch up");
    assert_eq!(report.dropped_frames, 0);
}
