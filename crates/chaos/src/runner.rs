//! The chaos runner: drive a live cluster under a nemesis schedule,
//! then validate the recorded history.
//!
//! One [`run_seeded`] call is a complete Jepsen-style experiment:
//!
//! 1. boot an `n`-node cluster — loopback TCP with client gateways, or
//!    the in-process channel mesh — with a seeded
//!    [`at_net::FaultInjector`] under every link and a shared
//!    [`at_node::EventProbe`] over every node;
//! 2. hammer it with one closed-loop client per node (pipelined
//!    transfers over the real wire protocol on TCP), while the nemesis
//!    walks the schedule: partitions, wire loss, duplication, delay,
//!    forced disconnects, warm crash/restarts, batch-timer skew;
//! 3. heal, drain, and wait for quiescent convergence
//!    ([`at_node::try_await_convergence`], which names the divergent
//!    digest pair if it fails);
//! 4. pin the final state with one read per account, then feed the
//!    merged event recording plus the final reports through the *same*
//!    validator battery the schedule explorer applies to simulated
//!    executions ([`at_check::validate_recorded`]): bounded
//!    linearizability, per-source FIFO-exactly-once, conflict-freedom,
//!    digest agreement, supply conservation — plus the live-cluster
//!    extras: zero real frame loss and zero lost acknowledgements when
//!    no crash was scheduled.
//!
//! Every violation carries the seed, and the schedule is a pure
//! function of the seed — the repro story `chaos_soak` prints.

use crate::nemesis::{generate_schedule, NemesisChoice};
use at_broadcast::auth::NoAuth;
use at_broadcast::bracha::BrachaBroadcast;
use at_broadcast::echo::EchoBroadcast;
use at_broadcast::{AccountOrderBackend, SecureBroadcast};
use at_check::{validate_recorded, Failure, FailureKind, RecordedRun};
use at_engine::replica::EnginePayload;
use at_engine::EngineConfig;
use at_model::codec::{Decode, Encode};
use at_model::{AccountId, Amount, ProcessId};
use at_net::transport::FaultInjector;
use at_net::VirtualTime;
use at_node::{
    start_mesh_cluster_with, start_tcp_cluster_with, try_await_convergence, Client, ClusterOptions,
    ConvergenceOptions, EventProbe, NodeConfig, NodeHandle, NodeReport, ResponseBody, TcpOptions,
};
use at_obs::{merge_traces, TraceConfig, TraceLog};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which transport a chaos run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosTransport {
    /// Loopback TCP with client gateways (crash/restart supported).
    Tcp,
    /// The in-process channel mesh (no sockets; crash steps skipped).
    Mesh,
}

impl ChaosTransport {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosTransport::Tcp => "tcp",
            ChaosTransport::Mesh => "mesh",
        }
    }
}

/// Shape of one chaos experiment (everything except the seed).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Cluster size (processes == accounts).
    pub n: usize,
    /// Initial balance of every account (deep, so admission noise never
    /// obscures a real violation).
    pub initial: u64,
    /// Transfers each node's client submits over the run.
    pub quota: usize,
    /// Max transfers a client keeps in flight (closed loop).
    pub pipeline: usize,
    /// Nemesis disruptions per generated schedule.
    pub disruptions: usize,
    /// Replica batch size cap.
    pub batch: usize,
    /// Replica batch window (µs).
    pub window_us: u64,
    /// Node budget of the final linearizability check.
    pub check_nodes: usize,
    /// How long the post-heal drain may take before the run is declared
    /// non-convergent.
    pub drain_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            n: 4,
            initial: 1_000_000,
            quota: 60,
            pipeline: 16,
            disruptions: 5,
            batch: 32,
            window_us: 500,
            check_nodes: 500_000,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// The outcome of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Backend label (`echo` / `bracha` / `acctorder`).
    pub backend: String,
    /// Transport label (`tcp` / `mesh`).
    pub transport: &'static str,
    /// Cluster size.
    pub n: usize,
    /// The schedule seed (full repro key together with the config).
    pub seed: u64,
    /// The executed schedule.
    pub schedule: Vec<NemesisChoice>,
    /// Transfers submitted across all clients.
    pub submitted: u64,
    /// Commit acknowledgements received.
    pub committed: u64,
    /// Rejection acknowledgements received.
    pub rejected: u64,
    /// Submissions whose acknowledgement was lost to a connection break
    /// (only possible around a crash step).
    pub unresolved: u64,
    /// Submissions still awaiting their acknowledgement when the client
    /// drain deadline expired (slow drain, not loss; expected 0).
    pub timed_out: u64,
    /// Engine events the probe recorded.
    pub events_recorded: usize,
    /// Whether the cluster reached quiescent digest agreement.
    pub converged: bool,
    /// Final ledger digest (replica 0).
    pub digest: u64,
    /// Final per-account balances (replica 0) — the determinism oracle.
    pub balances: Vec<u64>,
    /// Real frame loss across all transports (must be 0 after
    /// heal-and-drain).
    pub dropped_frames: u64,
    /// Delivered-but-unvalidated transfers evicted from a bounded
    /// per-source pending buffer, summed over the final reports (the
    /// replica-owned counter survives warm restarts). A closed-loop
    /// honest workload must never overflow the cap — nonzero is a
    /// certification failure with its own violation entry.
    pub overflow_dropped: u64,
    /// Validator violations (empty = the run upheld the paper's
    /// guarantees under this fault script).
    pub violations: Vec<Failure>,
    /// Whether the linearizability check exhausted its budget (neither
    /// verdict; should be false).
    pub unknown: bool,
    /// Rendered [`at_obs`] registry snapshot per still-running node,
    /// scraped just before shutdown — the post-mortem counters a
    /// counterexample report embeds (a node whose loop died mid-run
    /// simply has no entry).
    pub metrics: Vec<String>,
    /// Rendered causal timelines of transfers that never reached their
    /// acknowledgement (merged across every still-running node's trace
    /// ring, capped at [`MAX_EMBEDDED_TRACES`]) — the per-instance
    /// forensics a counterexample report embeds beside the schedule.
    pub traces: Vec<String>,
}

impl ChaosReport {
    /// One compact log line.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} seed {}: {} steps, {} submitted, {} committed, {} rejected, {} unresolved, \
             {} timed out, {} events, converged={}, dropped={}, overflow={}, violations={}{}",
            self.backend,
            self.transport,
            self.seed,
            self.schedule.len(),
            self.submitted,
            self.committed,
            self.rejected,
            self.unresolved,
            self.timed_out,
            self.events_recorded,
            self.converged,
            self.dropped_frames,
            self.overflow_dropped,
            self.violations.len(),
            if self.unknown { " (unknown)" } else { "" },
        )
    }
}

/// Loss counters harvested from node incarnations retired mid-run (a
/// `CrashRestart` step drops the old incarnation's `NodeReport`, and
/// its counters with it — the validator must still see them).
#[derive(Clone, Copy, Debug, Default)]
struct LossCounters {
    dropped: u64,
    lost_ingest: u64,
    malformed: u64,
}

/// Wall-clock the schedule itself spends (run windows + crash downtime).
fn schedule_wall(schedule: &[NemesisChoice]) -> Duration {
    let ms: u64 = schedule
        .iter()
        .map(|choice| match choice {
            NemesisChoice::Run { ms } => u64::from(*ms),
            NemesisChoice::CrashRestart { down_ms, .. } => u64::from(*down_ms) + 200,
            _ => 2,
        })
        .sum();
    Duration::from_millis(ms)
}

/// Per-client tally.
#[derive(Default)]
struct Tally {
    submitted: u64,
    committed: u64,
    rejected: u64,
    /// Acknowledgements lost for good to a broken connection.
    unresolved: u64,
    /// Acknowledgements merely still outstanding when the client's
    /// drain deadline expired — slow, not lost.
    timed_out: u64,
}

/// The `k`-th transfer of client `i`: rotating destination, varying
/// amount — deterministic, so a replayed run submits the same workload.
fn workload(i: usize, k: usize, n: usize) -> (AccountId, Amount) {
    let dest = (i + 1 + (k % (n - 1))) % n;
    (AccountId::new(dest as u32), Amount::new(1 + (k % 3) as u64))
}

/// A TCP chaos client: closed-loop pipelined submissions against the
/// node's gateway, reconnecting (to the *current* directory address)
/// whenever a crash or stop breaks the connection.
fn tcp_client_loop(
    i: usize,
    n: usize,
    quota: usize,
    pipeline: usize,
    addrs: Arc<Mutex<Vec<SocketAddr>>>,
    submissions_open: Arc<AtomicBool>,
    deadline: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let mut sent = 0usize;
    let mut client: Option<Client> = None;
    loop {
        let submitting = sent < quota && submissions_open.load(Ordering::Relaxed);
        let outstanding = client.as_ref().map_or(0, Client::outstanding);
        if !submitting && outstanding == 0 {
            return tally;
        }
        if Instant::now() >= deadline {
            // Still-outstanding acks at the deadline are slow, not
            // lost — classified apart from connection-break losses.
            tally.timed_out += outstanding;
            return tally;
        }
        let Some(c) = client.as_mut() else {
            let addr = addrs.lock().expect("addrs poisoned")[i];
            match Client::connect(addr) {
                Ok(c) => client = Some(c),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
            continue;
        };
        let mut io_err = false;
        while submitting && sent < quota && c.outstanding() < pipeline as u64 {
            let (dest, amount) = workload(i, sent, n);
            match c.submit_transfer(dest, amount) {
                Ok(_) => {
                    sent += 1;
                    tally.submitted += 1;
                }
                Err(_) => {
                    io_err = true;
                    break;
                }
            }
        }
        if !io_err {
            match c.recv_response(Duration::from_millis(20)) {
                Ok(Some(response)) => match response.body {
                    ResponseBody::Committed { .. } => tally.committed += 1,
                    ResponseBody::Rejected { .. } => tally.rejected += 1,
                    ResponseBody::Balance { .. } => {}
                },
                Ok(None) => {}
                Err(_) => io_err = true,
            }
        }
        if io_err {
            // The connection died (node crash or gateway stop): every
            // in-flight acknowledgement on it is gone for good.
            tally.unresolved += c.outstanding();
            client = None;
        }
    }
}

/// A mesh chaos client: the same closed loop over an in-process session.
fn mesh_client_loop<B>(
    handle: &NodeHandle<B>,
    i: usize,
    n: usize,
    quota: usize,
    pipeline: usize,
    deadline: Instant,
) -> Tally
where
    B: SecureBroadcast<EnginePayload>,
{
    let mut client = handle.local_client();
    let mut tally = Tally::default();
    let mut sent = 0usize;
    let mut outstanding = 0u64;
    while (sent < quota || outstanding > 0) && Instant::now() < deadline {
        while sent < quota && outstanding < pipeline as u64 {
            let (dest, amount) = workload(i, sent, n);
            client.submit_transfer(dest, amount);
            sent += 1;
            outstanding += 1;
            tally.submitted += 1;
        }
        if let Some(response) = client.recv_response(Duration::from_millis(20)) {
            match response.body {
                ResponseBody::Committed { .. } => {
                    tally.committed += 1;
                    outstanding -= 1;
                }
                ResponseBody::Rejected { .. } => {
                    tally.rejected += 1;
                    outstanding -= 1;
                }
                ResponseBody::Balance { .. } => {}
            }
        }
    }
    // A local client's channel never breaks: leftovers can only be
    // deadline-slow acks.
    tally.timed_out += outstanding;
    tally
}

/// Applies one nemesis step to the fault plane (everything except
/// crash/restart, which needs the cluster itself).
fn apply_fault_step(faults: &FaultInjector, n: usize, choice: &NemesisChoice) {
    let p = ProcessId::new;
    match *choice {
        NemesisChoice::Run { ms } => std::thread::sleep(Duration::from_millis(u64::from(ms))),
        NemesisChoice::PartitionLink { from, to } => faults.set_blocked(p(from), p(to), true),
        NemesisChoice::SplitBrain { boundary } => {
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    if a != b && ((a <= boundary) != (b <= boundary)) {
                        faults.set_blocked(p(a), p(b), true);
                    }
                }
            }
        }
        NemesisChoice::Degrade {
            from,
            to,
            drop_pct,
            dup_pct,
            delay_us,
        } => {
            let mut profile = faults.link(p(from), p(to));
            profile.drop_pct = drop_pct;
            profile.dup_pct = dup_pct;
            profile.delay_us = delay_us;
            faults.set_link(p(from), p(to), profile);
        }
        NemesisChoice::Disconnect { from, to } => faults.force_disconnect(p(from), p(to)),
        NemesisChoice::Heal => faults.heal_all(),
        NemesisChoice::CrashRestart { .. } | NemesisChoice::SkewTimers { .. } => {
            unreachable!("handled by the cluster-side executor")
        }
    }
}

/// Folds the final cluster state + recording into the report, running
/// the shared validator battery.
#[allow(clippy::too_many_arguments)]
fn finalize(
    config: &ChaosConfig,
    backend: &str,
    transport: ChaosTransport,
    seed: u64,
    schedule: &[NemesisChoice],
    tallies: Vec<Tally>,
    reports: Vec<NodeReport>,
    converged: bool,
    convergence_failure: Option<Failure>,
    carried_loss: LossCounters,
    pin_failure: Option<String>,
    probe: &EventProbe,
    metrics: Vec<String>,
    traces: Vec<String>,
) -> ChaosReport {
    let n = config.n;
    let mut violations = Vec::new();
    if let Some(failure) = convergence_failure {
        violations.push(failure);
    }
    if let Some(detail) = pin_failure {
        // The state-pinning reads are part of the certification: a run
        // whose final state never entered the history is *unchecked*,
        // not clean.
        violations.push(Failure {
            kind: FailureKind::Incomplete,
            detail,
        });
    }

    // Final reports plus the loss counters harvested from incarnations
    // a CrashRestart step retired (their counters die with the loop).
    let dropped: u64 = reports.iter().map(|r| r.dropped_frames).sum::<u64>() + carried_loss.dropped;
    let lost_ingest: u64 =
        reports.iter().map(|r| r.lost_ingest).sum::<u64>() + carried_loss.lost_ingest;
    let malformed: u64 =
        reports.iter().map(|r| r.malformed_frames).sum::<u64>() + carried_loss.malformed;
    if dropped + lost_ingest + malformed > 0 {
        violations.push(Failure {
            kind: FailureKind::FrameLoss,
            detail: format!(
                "reliable regime broken after heal-and-drain: dropped={dropped} \
                 lost_ingest={lost_ingest} malformed={malformed}"
            ),
        });
    }

    // The bounded per-source pending buffers exist to survive a
    // Byzantine flood; a closed-loop honest workload (pipeline-capped
    // clients) overflowing one means the replica silently discarded
    // delivered transfers that can now never apply — a liveness hole
    // the counterexample must name, not bury in the metrics dump.
    // The counter lives on the replica, so warm restarts carry it into
    // the final reports; no crash-time harvest is needed.
    let overflow_dropped: u64 = reports.iter().map(|r| r.overflow_dropped).sum();
    if overflow_dropped > 0 {
        violations.push(Failure {
            kind: FailureKind::FrameLoss,
            detail: format!(
                "{overflow_dropped} delivered transfers evicted from bounded pending \
                 buffers under an honest closed-loop workload"
            ),
        });
    }

    let crashed = schedule
        .iter()
        .any(|c| matches!(c, NemesisChoice::CrashRestart { .. }));
    let submitted: u64 = tallies.iter().map(|t| t.submitted).sum();
    let committed: u64 = tallies.iter().map(|t| t.committed).sum();
    let rejected: u64 = tallies.iter().map(|t| t.rejected).sum();
    let unresolved: u64 = tallies.iter().map(|t| t.unresolved).sum();
    let timed_out: u64 = tallies.iter().map(|t| t.timed_out).sum();
    if submitted != committed + rejected + unresolved + timed_out {
        violations.push(Failure {
            kind: FailureKind::Incomplete,
            detail: format!(
                "ack accounting broke: {submitted} submitted vs {committed} committed + \
                 {rejected} rejected + {unresolved} unresolved + {timed_out} timed out"
            ),
        });
    }
    if !crashed && unresolved > 0 {
        violations.push(Failure {
            kind: FailureKind::Incomplete,
            detail: format!("{unresolved} acknowledgements lost without any crash in the schedule"),
        });
    }
    if timed_out > 0 {
        // Distinct from loss: the drain was too slow for the client
        // deadline. Still a failed certification, but the diagnosis
        // (and the fix — longer drain_timeout) differs.
        violations.push(Failure {
            kind: FailureKind::Incomplete,
            detail: format!(
                "{timed_out} acknowledgements still outstanding when the client drain \
                 deadline expired (slow drain, not loss)"
            ),
        });
    }

    let events = probe.take_sorted();
    let events_recorded = events.len();
    let run = RecordedRun {
        n,
        initial: config.initial,
        events,
        digests: reports.iter().map(|r| (r.node, r.digest)).collect(),
        supplies: reports
            .iter()
            .map(|r| (r.node, r.balances.iter().map(|b| b.units()).sum()))
            .collect(),
    };
    let (failure, unknown) = validate_recorded(&run, |_| true, config.check_nodes);
    if let Some(failure) = failure {
        // A timed-out convergence wait already reported this divergence
        // (with the offending digest pair named): don't double-count
        // the same defect.
        let duplicate_divergence = failure.kind == FailureKind::Divergence
            && violations.iter().any(|v| v.kind == FailureKind::Divergence);
        if !duplicate_divergence {
            violations.push(failure);
        }
    }

    ChaosReport {
        backend: backend.to_string(),
        transport: transport.label(),
        n,
        seed,
        schedule: schedule.to_vec(),
        submitted,
        committed,
        rejected,
        unresolved,
        timed_out,
        events_recorded,
        converged,
        digest: reports.first().map_or(0, |r| r.digest),
        balances: reports
            .first()
            .map(|r| r.balances.iter().map(|b| b.units()).collect())
            .unwrap_or_default(),
        dropped_frames: dropped,
        overflow_dropped,
        violations,
        unknown,
        metrics,
        traces,
    }
}

/// Scrapes every reachable node's rendered metrics (half-dead clusters
/// included: a node whose loop is gone is skipped, not waited on).
fn scrape_metrics<'a, B>(handles: impl Iterator<Item = &'a NodeHandle<B>>) -> Vec<String>
where
    B: SecureBroadcast<EnginePayload> + 'a,
{
    handles
        .filter_map(|h| h.try_metrics(Duration::from_secs(2)))
        .map(|snapshot| snapshot.render())
        .collect()
}

/// How many rendered undelivered-instance timelines a report carries
/// (enough to diagnose, bounded so a mass-loss run stays printable).
pub const MAX_EMBEDDED_TRACES: usize = 16;

fn node_config(config: &ChaosConfig) -> NodeConfig {
    NodeConfig::new(
        EngineConfig::sharded_batched(4, config.batch, VirtualTime::from_micros(config.window_us)),
        Amount::new(config.initial),
    )
    // Always-on tracing: chaos workloads are small, and a counterexample
    // without the victim transfer's timeline is half a counterexample.
    // The config (epoch included) is cloned into every node and survives
    // warm restarts, so restarted incarnations stay on the shared clock.
    .with_trace(TraceConfig::always())
}

/// Scrapes every reachable node's trace ring (like [`scrape_metrics`],
/// skipping nodes whose loop died) and renders the merged timelines of
/// transfers that never completed: still mid-protocol at shutdown, or
/// with ring-evicted gaps. Worst (most-evented) first, capped.
fn undelivered_traces<'a, B>(handles: impl Iterator<Item = &'a NodeHandle<B>>) -> Vec<String>
where
    B: SecureBroadcast<EnginePayload> + 'a,
{
    let logs: Vec<TraceLog> = handles
        .filter_map(|h| h.try_trace(Duration::from_secs(2)))
        .collect();
    let mut timelines = merge_traces(&logs);
    timelines.retain(|t| t.e2e_us.is_none() || t.incomplete);
    timelines.sort_by_key(|t| std::cmp::Reverse(t.events.len()));
    timelines
        .iter()
        .take(MAX_EMBEDDED_TRACES)
        .map(|t| t.render())
        .collect()
}

fn convergence_failure(timeout: &at_node::ConvergenceTimeout) -> Failure {
    Failure {
        kind: if timeout.divergent.is_some() {
            FailureKind::Divergence
        } else {
            FailureKind::Incomplete
        },
        detail: timeout.to_string(),
    }
}

/// Runs one chaos experiment over loopback TCP (see the [module
/// docs](self) for the phases).
pub fn run_chaos_tcp<B, F>(
    config: &ChaosConfig,
    backend: &str,
    seed: u64,
    schedule: &[NemesisChoice],
    make: F,
) -> ChaosReport
where
    B: SecureBroadcast<EnginePayload> + 'static,
    B::Msg: Encode + Decode + Send + 'static,
    F: Fn(ProcessId) -> B,
{
    let n = config.n;
    let faults = FaultInjector::new(seed);
    let probe = EventProbe::new();
    let options = ClusterOptions::tcp(TcpOptions::default())
        .with_faults(faults.clone())
        .with_probe(probe.clone());
    let mut cluster =
        start_tcp_cluster_with(n, node_config(config), options, make).expect("cluster start");

    let addrs = Arc::new(Mutex::new(cluster.client_addrs.clone()));
    let submissions_open = Arc::new(AtomicBool::new(true));
    let deadline = Instant::now() + schedule_wall(schedule) + config.drain_timeout;
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let addrs = Arc::clone(&addrs);
            let open = Arc::clone(&submissions_open);
            let (quota, pipeline) = (config.quota, config.pipeline);
            std::thread::spawn(move || {
                tcp_client_loop(i, n, quota, pipeline, addrs, open, deadline)
            })
        })
        .collect();

    // The nemesis walks the schedule while the clients hammer.
    let mut carried_loss = LossCounters::default();
    for choice in schedule {
        match *choice {
            NemesisChoice::CrashRestart { node, down_ms } => {
                let i = node as usize;
                // Harvest the dying incarnation's loss counters — they
                // die with its loop, and the FrameLoss gate must see
                // loss from *before* the crash too. Transport drops are
                // read just before the stop; ingest/decode losses come
                // from `stop_counted`, which includes anything the stop
                // itself discarded at grace expiry.
                let handle = cluster.handles[i].as_ref().expect("victim running");
                carried_loss.dropped += handle.report().dropped_frames;
                let (replica, lost_ingest, malformed) = cluster.stop_node_counted(i);
                carried_loss.lost_ingest += lost_ingest;
                carried_loss.malformed += malformed;
                std::thread::sleep(Duration::from_millis(u64::from(down_ms)));
                cluster.restart_node(i, replica).expect("restart");
                addrs.lock().expect("addrs poisoned")[i] = cluster.client_addrs[i];
            }
            NemesisChoice::SkewTimers { node, pct } => {
                if let Some(handle) = cluster.handles[node as usize].as_ref() {
                    handle.set_timer_skew(pct);
                }
            }
            ref fault => apply_fault_step(&faults, n, fault),
        }
    }
    faults.heal_all(); // idempotent: generated schedules end healed
    submissions_open.store(false, Ordering::Relaxed);
    let tallies: Vec<Tally> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Heal-and-drain: quiescent digest agreement across every node,
    // crashed-and-restarted ones included (TCP outboxes replay what
    // they missed).
    let handles: Vec<_> = cluster.running().collect();
    let outcome = try_await_convergence(
        &handles,
        ConvergenceOptions {
            timeout: config.drain_timeout,
            poll: Duration::from_millis(25),
        },
    );
    drop(handles);
    let (reports, converged, failure) = match outcome {
        Ok(reports) => (reports, true, None),
        Err(timeout) => {
            let failure = convergence_failure(&timeout);
            (timeout.last_reports.clone(), false, Some(failure))
        }
    };

    let mut pin_failure = None;
    if converged {
        // Pin the converged state into the history: one read per
        // account at node 0 (recorded as ReadObserved by the probe).
        // These reads are part of the certification — a failure here
        // means the final state never entered the history, so it is
        // reported, not swallowed.
        let pin = Client::connect(addrs.lock().expect("addrs poisoned")[0])
            .map_err(|err| format!("state-pinning client failed to connect: {err}"))
            .and_then(|mut reader| {
                for account in 0..n as u32 {
                    reader
                        .read_balance(AccountId::new(account), Duration::from_secs(5))
                        .map_err(|err| format!("state-pinning read of account {account}: {err}"))?;
                }
                Ok(())
            });
        pin_failure = pin.err();
    }
    let metrics = scrape_metrics(cluster.running());
    let traces = undelivered_traces(cluster.running());
    cluster.stop_all();

    finalize(
        config,
        backend,
        ChaosTransport::Tcp,
        seed,
        schedule,
        tallies,
        reports,
        converged,
        failure,
        carried_loss,
        pin_failure,
        &probe,
        metrics,
        traces,
    )
}

/// Runs one chaos experiment over the in-process channel mesh.
/// [`NemesisChoice::CrashRestart`] steps are skipped (mesh endpoints
/// cannot be re-wired); generated mesh schedules never contain them.
pub fn run_chaos_mesh<B, F>(
    config: &ChaosConfig,
    backend: &str,
    seed: u64,
    schedule: &[NemesisChoice],
    make: F,
) -> ChaosReport
where
    B: SecureBroadcast<EnginePayload> + 'static,
    B::Msg: Encode + Decode + Send + 'static,
    F: Fn(ProcessId) -> B,
{
    let n = config.n;
    let faults = FaultInjector::new(seed);
    let probe = EventProbe::new();
    let options = ClusterOptions::default()
        .with_faults(faults.clone())
        .with_probe(probe.clone());
    let handles = Arc::new(start_mesh_cluster_with(
        n,
        node_config(config),
        &options,
        make,
    ));

    let deadline = Instant::now() + schedule_wall(schedule) + config.drain_timeout;
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let handles = Arc::clone(&handles);
            let (quota, pipeline) = (config.quota, config.pipeline);
            std::thread::spawn(move || {
                mesh_client_loop(&handles[i], i, n, quota, pipeline, deadline)
            })
        })
        .collect();

    for choice in schedule {
        match *choice {
            NemesisChoice::CrashRestart { down_ms, .. } => {
                // No re-wirable endpoints on the mesh: keep the
                // schedule's timing shape without the crash.
                std::thread::sleep(Duration::from_millis(u64::from(down_ms)));
            }
            NemesisChoice::SkewTimers { node, pct } => handles[node as usize].set_timer_skew(pct),
            ref fault => apply_fault_step(&faults, n, fault),
        }
    }
    faults.heal_all();
    let tallies: Vec<Tally> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    let refs: Vec<&NodeHandle<B>> = handles.iter().collect();
    let outcome = try_await_convergence(
        &refs,
        ConvergenceOptions {
            timeout: config.drain_timeout,
            poll: Duration::from_millis(25),
        },
    );
    drop(refs);
    let (reports, converged, failure) = match outcome {
        Ok(reports) => (reports, true, None),
        Err(timeout) => {
            let failure = convergence_failure(&timeout);
            (timeout.last_reports.clone(), false, Some(failure))
        }
    };

    let mut pin_failure = None;
    if converged {
        // Pin the converged state: reads through node 0's local client
        // (reported on failure — see the TCP runner).
        let mut reader = handles[0].local_client();
        for account in 0..n as u32 {
            if reader
                .read(AccountId::new(account), Duration::from_secs(5))
                .is_none()
            {
                pin_failure = Some(format!("state-pinning read of account {account} timed out"));
                break;
            }
        }
    }
    let metrics = scrape_metrics(handles.iter());
    let traces = undelivered_traces(handles.iter());
    let handles = Arc::try_unwrap(handles)
        .unwrap_or_else(|_| panic!("client threads joined, no handle clones remain"));
    for handle in handles {
        handle.stop();
    }

    finalize(
        config,
        backend,
        ChaosTransport::Mesh,
        seed,
        schedule,
        tallies,
        reports,
        converged,
        failure,
        LossCounters::default(),
        pin_failure,
        &probe,
        metrics,
        traces,
    )
}

/// The production backend line-up of a soak (labels match at-check's).
pub fn chaos_backends() -> Vec<&'static str> {
    vec!["echo", "bracha", "acctorder"]
}

/// Runs one experiment with the schedule generated from `seed`,
/// dispatching on backend label and transport. Crash steps are only
/// generated for TCP runs.
pub fn run_seeded(
    config: &ChaosConfig,
    backend: &str,
    transport: ChaosTransport,
    seed: u64,
) -> ChaosReport {
    let allow_crash = transport == ChaosTransport::Tcp;
    let schedule = generate_schedule(seed, config.n, config.disruptions, allow_crash);
    run_with_schedule(config, backend, transport, seed, &schedule)
}

/// [`run_seeded`] with an explicit schedule (the replay entry point).
pub fn run_with_schedule(
    config: &ChaosConfig,
    backend: &str,
    transport: ChaosTransport,
    seed: u64,
    schedule: &[NemesisChoice],
) -> ChaosReport {
    let n = config.n;
    match (backend, transport) {
        ("echo", ChaosTransport::Tcp) => run_chaos_tcp(config, backend, seed, schedule, |me| {
            EchoBroadcast::<EnginePayload, NoAuth>::new(me, n, NoAuth)
        }),
        ("echo", ChaosTransport::Mesh) => run_chaos_mesh(config, backend, seed, schedule, |me| {
            EchoBroadcast::<EnginePayload, NoAuth>::new(me, n, NoAuth)
        }),
        ("bracha", ChaosTransport::Tcp) => run_chaos_tcp(config, backend, seed, schedule, |me| {
            BrachaBroadcast::<EnginePayload>::new(me, n)
        }),
        ("bracha", ChaosTransport::Mesh) => run_chaos_mesh(config, backend, seed, schedule, |me| {
            BrachaBroadcast::<EnginePayload>::new(me, n)
        }),
        ("acctorder", ChaosTransport::Tcp) => {
            run_chaos_tcp(config, backend, seed, schedule, |me| {
                AccountOrderBackend::<EnginePayload, NoAuth>::new(me, n, NoAuth)
            })
        }
        ("acctorder", ChaosTransport::Mesh) => {
            run_chaos_mesh(config, backend, seed, schedule, |me| {
                AccountOrderBackend::<EnginePayload, NoAuth>::new(me, n, NoAuth)
            })
        }
        (other, _) => panic!("unknown backend {other:?} (echo|bracha|acctorder)"),
    }
}
