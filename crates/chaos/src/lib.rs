//! # at-chaos — nemesis fault injection for live clusters
//!
//! at-check model-checks the engine inside the deterministic simulator;
//! this crate closes the remaining gap to the real runtime: it drives a
//! *live* at-node cluster — OS threads, wall clocks, and (on TCP) real
//! sockets speaking the versioned wire protocol — through seeded
//! nemesis schedules of partitions, wire loss, duplication, delay,
//! forced disconnects, warm crash/restarts, and batch-timer skew, while
//! an [`at_node::EventProbe`] records the complete client-visible
//! history and per-replica delivery logs. After heal-and-drain, the
//! recording goes through the **same validator battery** the schedule
//! explorer applies to simulated executions
//! ([`at_check::validate_recorded`]): bounded linearizability of the
//! client history, the per-source FIFO-exactly-once broadcast contract,
//! conflict-freedom, digest agreement, supply conservation — plus the
//! live-cluster obligations that every injected fault was *masked*, not
//! absorbed as loss (`dropped_frames() == 0`) and that no
//! acknowledgement vanished without a crash.
//!
//! Schedules are pure functions of their seed
//! ([`generate_schedule`]), so any violation reproduces from a one-line
//! command; the `chaos_soak` bin in at-bench runs N seeds × 3 backends
//! and prints exactly that line on failure.
//!
//! # Example
//!
//! ```no_run
//! use at_chaos::{run_seeded, ChaosConfig, ChaosTransport};
//!
//! let config = ChaosConfig::default();
//! let report = run_seeded(&config, "echo", ChaosTransport::Tcp, 42);
//! assert!(report.violations.is_empty(), "{:?}", report.violations);
//! assert!(report.converged);
//! assert_eq!(report.dropped_frames, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nemesis;
pub mod runner;

pub use nemesis::{format_nemesis_schedule, generate_schedule, NemesisChoice};
pub use runner::{
    chaos_backends, run_chaos_mesh, run_chaos_tcp, run_seeded, run_with_schedule, ChaosConfig,
    ChaosReport, ChaosTransport,
};
