//! Nemesis schedules: the replayable fault scripts a chaos run executes.
//!
//! A schedule is a flat `Vec<NemesisChoice>` the runner walks step by
//! step against a live cluster — the chaos counterpart of at-check's
//! `Schedule` of delivery `Choice`s. Schedules are *generated* from a
//! seed ([`generate_schedule`] is a pure function of `(seed, n,
//! disruptions, allow_crash)`), so a failing run's fault script
//! regenerates bit-for-bit from its seed alone, and the soak harness
//! prints exactly that seed as a repro command. (The *execution* is
//! wall-clock: a tight race may need a few replays of the same schedule
//! to re-trigger.)

use std::fmt;

/// One nemesis step against a live cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NemesisChoice {
    /// Let traffic flow undisturbed for `ms` milliseconds.
    Run {
        /// Milliseconds to wait.
        ms: u32,
    },
    /// Block the *directed* link `from → to` (an asymmetric partition:
    /// the reverse direction keeps flowing unless also blocked).
    PartitionLink {
        /// Sending side of the blocked direction.
        from: u32,
        /// Receiving side of the blocked direction.
        to: u32,
    },
    /// Full bidirectional split: processes `0..=boundary` on one side,
    /// the rest on the other, every crossing link blocked both ways.
    SplitBrain {
        /// Highest process id of the first component.
        boundary: u32,
    },
    /// Degrade the directed link `from → to` with wire-level loss,
    /// duplication, and latency (see `at_net::LinkProfile`).
    Degrade {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Percent of frames "lost on the wire" (repaired by replay).
        drop_pct: u8,
        /// Percent of frames transmitted twice (dedup exercised).
        dup_pct: u8,
        /// Extra per-frame latency in microseconds.
        delay_us: u32,
    },
    /// Tear down the `from → to` connection once (reconnect + outbox
    /// replay).
    Disconnect {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Warm-crash `node`: graceful stop, `down_ms` offline, restart from
    /// the same replica state on a fresh port. TCP clusters only — the
    /// mesh runner skips this step (its endpoints cannot be re-wired).
    CrashRestart {
        /// The victim.
        node: u32,
        /// Milliseconds the victim stays down.
        down_ms: u32,
    },
    /// Skew `node`'s batch timers to `pct` percent of nominal.
    SkewTimers {
        /// The node whose timers drift.
        node: u32,
        /// Percent of the nominal delay (100 = no skew).
        pct: u32,
    },
    /// Lift every partition, degradation, and pending disconnect.
    Heal,
}

impl fmt::Display for NemesisChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NemesisChoice::Run { ms } => write!(f, "run {ms}ms"),
            NemesisChoice::PartitionLink { from, to } => write!(f, "partition {from}->{to}"),
            NemesisChoice::SplitBrain { boundary } => {
                write!(f, "split {{0..={boundary}}} | rest")
            }
            NemesisChoice::Degrade {
                from,
                to,
                drop_pct,
                dup_pct,
                delay_us,
            } => write!(
                f,
                "degrade {from}->{to} drop={drop_pct}% dup={dup_pct}% delay={delay_us}us"
            ),
            NemesisChoice::Disconnect { from, to } => write!(f, "disconnect {from}->{to}"),
            NemesisChoice::CrashRestart { node, down_ms } => {
                write!(f, "crash {node} for {down_ms}ms")
            }
            NemesisChoice::SkewTimers { node, pct } => write!(f, "skew {node} to {pct}%"),
            NemesisChoice::Heal => write!(f, "heal"),
        }
    }
}

/// Renders a schedule as one bracketed line (the form repro output and
/// counterexample artifacts use).
pub fn format_nemesis_schedule(schedule: &[NemesisChoice]) -> String {
    let steps: Vec<String> = schedule.iter().map(|c| c.to_string()).collect();
    format!("[{}]", steps.join("; "))
}

/// The deterministic generator RNG (xorshift64*; self-contained so a
/// schedule is a pure function of its seed, independent of any library's
/// stream details).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Generates the seeded nemesis schedule for an `n`-process cluster:
/// `disruptions` fault steps interleaved with run windows, ending in a
/// final heal-and-drain window. `allow_crash` gates
/// [`NemesisChoice::CrashRestart`] steps (off for mesh clusters). Pure
/// in `(seed, n, disruptions, allow_crash)` — the whole repro story.
pub fn generate_schedule(
    seed: u64,
    n: usize,
    disruptions: usize,
    allow_crash: bool,
) -> Vec<NemesisChoice> {
    assert!(n >= 2, "need at least two processes");
    let mut rng = Rng::new(seed);
    let mut schedule = Vec::with_capacity(disruptions * 3 + 3);
    let link = |rng: &mut Rng| {
        let from = rng.below(n as u64) as u32;
        let to = (from + 1 + rng.below(n as u64 - 1) as u32) % n as u32;
        (from, to)
    };
    schedule.push(NemesisChoice::Run {
        ms: 10 + rng.below(20) as u32,
    });
    for _ in 0..disruptions {
        let kind = rng.below(10);
        match kind {
            0 | 1 => {
                let (from, to) = link(&mut rng);
                schedule.push(NemesisChoice::PartitionLink { from, to });
            }
            2 => {
                schedule.push(NemesisChoice::SplitBrain {
                    boundary: rng.below(n as u64 - 1) as u32,
                });
            }
            3..=5 => {
                let (from, to) = link(&mut rng);
                schedule.push(NemesisChoice::Degrade {
                    from,
                    to,
                    drop_pct: (5 + rng.below(25)) as u8,
                    dup_pct: rng.below(15) as u8,
                    delay_us: 100 + rng.below(2_000) as u32,
                });
            }
            6 => {
                let (from, to) = link(&mut rng);
                schedule.push(NemesisChoice::Disconnect { from, to });
            }
            7 if allow_crash => {
                // Heal first: crashing into an active partition would
                // strand the victim's graceful flush on its blocked
                // outboxes (loss, not a safety counterexample).
                schedule.push(NemesisChoice::Heal);
                schedule.push(NemesisChoice::CrashRestart {
                    node: rng.below(n as u64) as u32,
                    down_ms: 20 + rng.below(40) as u32,
                });
            }
            7 => {
                let (from, to) = link(&mut rng);
                schedule.push(NemesisChoice::Disconnect { from, to });
            }
            _ => {
                schedule.push(NemesisChoice::SkewTimers {
                    node: rng.below(n as u64) as u32,
                    pct: (40 + rng.below(320)) as u32,
                });
            }
        }
        schedule.push(NemesisChoice::Run {
            ms: 15 + rng.below(40) as u32,
        });
        if rng.below(2) == 0 {
            schedule.push(NemesisChoice::Heal);
            schedule.push(NemesisChoice::Run {
                ms: 10 + rng.below(20) as u32,
            });
        }
    }
    schedule.push(NemesisChoice::Heal);
    schedule.push(NemesisChoice::Run { ms: 50 });
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure_in_the_seed() {
        let a = generate_schedule(42, 4, 6, true);
        let b = generate_schedule(42, 4, 6, true);
        assert_eq!(a, b);
        assert_ne!(a, generate_schedule(43, 4, 6, true));
    }

    #[test]
    fn schedules_end_healed_and_draining() {
        for seed in 0..20 {
            let schedule = generate_schedule(seed, 4, 5, true);
            let tail = &schedule[schedule.len() - 2..];
            assert_eq!(tail[0], NemesisChoice::Heal);
            assert!(matches!(tail[1], NemesisChoice::Run { .. }));
        }
    }

    #[test]
    fn crashes_are_gated_and_preceded_by_heal() {
        for seed in 0..50u64 {
            let schedule = generate_schedule(seed, 4, 8, false);
            assert!(!schedule
                .iter()
                .any(|c| matches!(c, NemesisChoice::CrashRestart { .. })));
            let with_crash = generate_schedule(seed, 4, 8, true);
            for (i, step) in with_crash.iter().enumerate() {
                if matches!(step, NemesisChoice::CrashRestart { .. }) {
                    assert_eq!(
                        with_crash[i - 1],
                        NemesisChoice::Heal,
                        "seed {seed} step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn seeds_yield_mostly_distinct_schedules() {
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..100u64 {
            distinct.insert(generate_schedule(seed, 4, 5, true));
        }
        assert!(distinct.len() >= 95, "only {} distinct", distinct.len());
    }

    #[test]
    fn links_are_never_self_loops_and_stay_in_range() {
        for seed in 0..30u64 {
            for choice in generate_schedule(seed, 3, 10, true) {
                match choice {
                    NemesisChoice::PartitionLink { from, to }
                    | NemesisChoice::Degrade { from, to, .. }
                    | NemesisChoice::Disconnect { from, to } => {
                        assert_ne!(from, to);
                        assert!(from < 3 && to < 3);
                    }
                    NemesisChoice::SplitBrain { boundary } => assert!(boundary < 2),
                    NemesisChoice::CrashRestart { node, .. }
                    | NemesisChoice::SkewTimers { node, .. } => assert!(node < 3),
                    NemesisChoice::Run { .. } | NemesisChoice::Heal => {}
                }
            }
        }
    }

    #[test]
    fn schedules_render_round_trippably_readable() {
        let schedule = vec![
            NemesisChoice::Run { ms: 30 },
            NemesisChoice::PartitionLink { from: 0, to: 2 },
            NemesisChoice::Heal,
        ];
        let text = format_nemesis_schedule(&schedule);
        assert_eq!(text, "[run 30ms; partition 0->2; heal]");
    }
}
