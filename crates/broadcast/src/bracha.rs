//! Bracha's asynchronous reliable broadcast (Bracha & Toueg, JACM 1985) —
//! reference [10] of the paper, and the protocol behind its "naive
//! quadratic secure broadcast implementation".
//!
//! For each broadcast instance `(source, seq)` over authenticated
//! channels, with `n = 3f + 1` tolerance:
//!
//! 1. the source sends `INIT(m)` to all;
//! 2. on the *first* `INIT` for the instance, a process sends
//!    `ECHO(m)` to all;
//! 3. on `⌈(n+f+1)/2⌉` matching `ECHO`s (or `f+1` matching `READY`s), a
//!    process sends `READY(m)` to all — once per instance;
//! 4. on `2f+1` matching `READY`s, the process delivers `m`.
//!
//! Message complexity: `O(n²)` per broadcast, 3 message delays — the cost
//! profile the evaluation of Section 5 measures.
//!
//! Deliveries are released through a [`SourceOrderBuffer`], yielding the
//! source-order (indeed FIFO) property of Section 5.2.

use crate::secure::TraceExtract;
use crate::types::{SourceOrderBuffer, Step};
use at_model::codec::encode;
use at_model::{Encode, ProcessId, SeqNo};
use at_obs::{TraceEventKind, Tracer};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Wire messages of the Bracha protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrachaMsg<P> {
    /// The source's initial proposal for its own `(seq, payload)`.
    Init {
        /// The source's sequence number.
        seq: SeqNo,
        /// The payload.
        payload: P,
    },
    /// Witness that the sender received `INIT(payload)` for the instance.
    Echo {
        /// The instance's source process.
        source: ProcessId,
        /// The instance's sequence number.
        seq: SeqNo,
        /// The echoed payload.
        payload: P,
    },
    /// Commitment that the sender is ready to deliver `payload`.
    Ready {
        /// The instance's source process.
        source: ProcessId,
        /// The instance's sequence number.
        seq: SeqNo,
        /// The committed payload.
        payload: P,
    },
}

type InstanceKey = (ProcessId, SeqNo);
type Digest = [u8; 32];

#[derive(Default)]
struct Instance<P> {
    /// The digest this process echoed (first INIT wins).
    echoed: Option<Digest>,
    /// Distinct processes that echoed each digest.
    echoes: HashMap<Digest, BTreeSet<ProcessId>>,
    /// Distinct processes that sent READY for each digest.
    readies: HashMap<Digest, BTreeSet<ProcessId>>,
    /// Whether this process already sent its READY.
    ready_sent: bool,
    /// Whether the instance delivered.
    delivered: bool,
    /// Payloads seen, by digest.
    payloads: HashMap<Digest, P>,
}

impl<P> Instance<P> {
    fn new() -> Self {
        Instance {
            echoed: None,
            echoes: HashMap::new(),
            readies: HashMap::new(),
            ready_sent: false,
            delivered: false,
            payloads: HashMap::new(),
        }
    }
}

/// One process's endpoint of the Bracha reliable broadcast.
///
/// The struct is a pure state machine: [`BrachaBroadcast::broadcast`] and
/// [`BrachaBroadcast::on_message`] fill a [`Step`] with messages to send
/// and payloads to deliver; the caller (an [`at_net::Actor`] or a unit
/// test) moves them.
pub struct BrachaBroadcast<P> {
    me: ProcessId,
    n: usize,
    f: usize,
    next_seq: SeqNo,
    instances: HashMap<InstanceKey, Instance<P>>,
    order: SourceOrderBuffer<P>,
    /// Instances delivered over this endpoint's lifetime — monotone, so
    /// it survives [`BrachaBroadcast::prune_delivered`] (a live count of
    /// the `delivered` flags would shrink as instances are pruned).
    delivered_total: usize,
    tracer: Option<(Tracer, TraceExtract<P>)>,
}

impl<P: Clone + Encode> BrachaBroadcast<P> {
    /// Creates the endpoint for process `me` in a system of `n` processes
    /// tolerating `f = ⌊(n−1)/3⌋` Byzantine faults.
    pub fn new(me: ProcessId, n: usize) -> Self {
        assert!(n >= 1, "at least one process");
        BrachaBroadcast {
            me,
            n,
            f: (n - 1) / 3,
            next_seq: SeqNo::ZERO,
            instances: HashMap::new(),
            order: SourceOrderBuffer::new(),
            delivered_total: 0,
            tracer: None,
        }
    }

    /// Wires causal tracing: traced payloads get their INIT / ECHO /
    /// READY / deliver steps recorded (see
    /// [`crate::SecureBroadcast::set_tracer`]).
    pub fn set_tracer(&mut self, tracer: Tracer, extract: fn(&P) -> Option<at_obs::TraceCtx>) {
        self.tracer = Some((tracer, extract));
    }

    /// Records one protocol step for `payload`'s trace (no-op for
    /// untraced payloads); a step observed on a message from another
    /// process counts one hop.
    fn trace(&self, payload: &P, from: ProcessId, kind: TraceEventKind, arg: u64) {
        if let Some((tracer, extract)) = &self.tracer {
            if let Some(ctx) = extract(payload) {
                let ctx = if from != self.me { ctx.hopped() } else { ctx };
                tracer.record(ctx, kind, arg);
            }
        }
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> usize {
        self.f
    }

    /// `⌈(n+f+1)/2⌉` matching echoes trigger READY.
    pub fn echo_quorum(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// `f+1` READYs amplify, `2f+1` deliver.
    fn ready_amplify(&self) -> usize {
        self.f + 1
    }

    fn ready_deliver(&self) -> usize {
        2 * self.f + 1
    }

    /// Starts broadcasting `payload` with the next sequence number;
    /// returns the sequence number used.
    pub fn broadcast(&mut self, payload: P, step: &mut Step<BrachaMsg<P>, P>) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        self.trace(&payload, self.me, TraceEventKind::Send, self.n as u64);
        step.send_all(self.n, BrachaMsg::Init { seq, payload });
        seq
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: BrachaMsg<P>,
        step: &mut Step<BrachaMsg<P>, P>,
    ) {
        match msg {
            BrachaMsg::Init { seq, payload } => self.on_init(from, seq, payload, step),
            BrachaMsg::Echo {
                source,
                seq,
                payload,
            } => self.on_echo(from, source, seq, payload, step),
            BrachaMsg::Ready {
                source,
                seq,
                payload,
            } => self.on_ready(from, source, seq, payload, step),
        }
    }

    fn on_init(
        &mut self,
        from: ProcessId,
        seq: SeqNo,
        payload: P,
        step: &mut Step<BrachaMsg<P>, P>,
    ) {
        // The INIT's sender *is* the instance's source (channels are
        // authenticated): a Byzantine process cannot open instances for
        // someone else.
        if self.is_stale(from, seq) {
            return; // replay of an already-released (possibly pruned) instance
        }
        let digest = digest_of(&payload);
        let instance = self
            .instances
            .entry((from, seq))
            .or_insert_with(Instance::new);
        instance
            .payloads
            .entry(digest)
            .or_insert_with(|| payload.clone());
        if instance.echoed.is_some() {
            return; // echo only the first INIT per instance
        }
        instance.echoed = Some(digest);
        self.trace(&payload, from, TraceEventKind::Echo, self.n as u64);
        step.send_all(
            self.n,
            BrachaMsg::Echo {
                source: from,
                seq,
                payload,
            },
        );
    }

    fn on_echo(
        &mut self,
        from: ProcessId,
        source: ProcessId,
        seq: SeqNo,
        payload: P,
        step: &mut Step<BrachaMsg<P>, P>,
    ) {
        if self.is_stale(source, seq) {
            return;
        }
        let digest = digest_of(&payload);
        let (echo_quorum, ready_deliver) = (self.echo_quorum(), self.ready_deliver());
        let n = self.n;
        let instance = self
            .instances
            .entry((source, seq))
            .or_insert_with(Instance::new);
        instance
            .payloads
            .entry(digest)
            .or_insert_with(|| payload.clone());
        let echoes = instance.echoes.entry(digest).or_default();
        echoes.insert(from);
        if echoes.len() >= echo_quorum && !instance.ready_sent {
            instance.ready_sent = true;
            self.trace(&payload, from, TraceEventKind::Ready, echo_quorum as u64);
            step.send_all(
                n,
                BrachaMsg::Ready {
                    source,
                    seq,
                    payload,
                },
            );
        }
        let _ = ready_deliver;
    }

    fn on_ready(
        &mut self,
        from: ProcessId,
        source: ProcessId,
        seq: SeqNo,
        payload: P,
        step: &mut Step<BrachaMsg<P>, P>,
    ) {
        if self.is_stale(source, seq) {
            return;
        }
        let digest = digest_of(&payload);
        let (ready_amplify, ready_deliver) = (self.ready_amplify(), self.ready_deliver());
        let n = self.n;
        let instance = self
            .instances
            .entry((source, seq))
            .or_insert_with(Instance::new);
        instance
            .payloads
            .entry(digest)
            .or_insert_with(|| payload.clone());
        let readies = instance.readies.entry(digest).or_default();
        readies.insert(from);
        let count = readies.len();

        if count >= ready_amplify && !instance.ready_sent {
            instance.ready_sent = true;
            step.send_all(
                n,
                BrachaMsg::Ready {
                    source,
                    seq,
                    payload: payload.clone(),
                },
            );
        }
        if count >= ready_deliver && !instance.delivered {
            instance.delivered = true;
            self.delivered_total += 1;
            for (released_seq, released) in self.order.offer(source, seq, payload) {
                self.trace(
                    &released,
                    from,
                    TraceEventKind::Deliver,
                    released_seq.value(),
                );
                step.deliver(source, released_seq, released);
            }
        }
    }

    /// Number of broadcast instances with protocol state.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of instances this endpoint has delivered over its
    /// lifetime (monotone; unaffected by pruning).
    pub fn delivered_count(&self) -> usize {
        self.delivered_total
    }

    /// Whether `(source, seq)` is behind the source's release floor —
    /// i.e. already delivered and released in source order, so any
    /// further message for it is a replay that must not re-create
    /// (pruned) instance state.
    fn is_stale(&self, source: ProcessId, seq: SeqNo) -> bool {
        seq.value() < self.order.expected(source).value()
    }

    /// Drops the protocol state of every instance that has been both
    /// delivered and released in source order, returning how many were
    /// pruned. The per-source release floors (kept in `O(n)` space)
    /// continue to suppress replays of pruned instances; instances that
    /// delivered into a sequence gap keep their state until the gap
    /// closes.
    pub fn prune_delivered(&mut self) -> usize {
        let order = &self.order;
        let before = self.instances.len();
        self.instances.retain(|(source, seq), instance| {
            !(instance.delivered && seq.value() < order.expected(*source).value())
        });
        before - self.instances.len()
    }

    /// Raises the delivery floor of `source` to instance `floor`
    /// (snapshot bootstrap — see
    /// [`crate::SecureBroadcast::set_delivery_floor`]): buffered and
    /// future messages at or below the floor are discarded, delivery
    /// resumes at `floor + 1`, and when `source` is this endpoint its
    /// own sequence counter is bumped past the floor.
    pub fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        self.order.advance(source, floor);
        if source == self.me && floor.value() > self.next_seq.value() {
            self.next_seq = floor;
        }
        self.instances
            .retain(|(s, seq), _| !(*s == source && seq.value() <= floor.value()));
    }

    /// *Byzantine harness only*: opens one broadcast instance but sends
    /// `INIT(left)` to the lower half of the system and `INIT(right)` to
    /// the upper half — the classic equivocation attempt. A correct
    /// process never calls this; the adversarial engine actors do, and
    /// the protocol's echo quorum ensures at most one of the two payloads
    /// can ever be delivered.
    pub fn broadcast_split(
        &mut self,
        left: P,
        right: P,
        step: &mut Step<BrachaMsg<P>, P>,
    ) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        for i in 0..self.n {
            let payload = if i < self.n / 2 {
                left.clone()
            } else {
                right.clone()
            };
            step.send(ProcessId::new(i as u32), BrachaMsg::Init { seq, payload });
        }
        seq
    }
}

impl<P: Clone + Encode> fmt::Debug for BrachaBroadcast<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BrachaBroadcast(me={}, n={}, f={}, instances={})",
            self.me,
            self.n,
            self.f,
            self.instances.len()
        )
    }
}

fn digest_of<P: Encode>(payload: &P) -> Digest {
    at_crypto::Sha256::digest(&encode(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Delivery;
    use std::collections::VecDeque;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Runs a closed system of n endpoints to quiescence, returning each
    /// process's deliveries. `byzantine_drop` lets a test drop messages
    /// from specific senders to specific receivers.
    fn run_system(
        n: usize,
        broadcasts: Vec<(ProcessId, u64)>,
        drop_rule: impl Fn(ProcessId, ProcessId, &BrachaMsg<u64>) -> bool,
    ) -> Vec<Vec<Delivery<u64>>> {
        let mut endpoints: Vec<BrachaBroadcast<u64>> = (0..n)
            .map(|i| BrachaBroadcast::new(p(i as u32), n))
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, BrachaMsg<u64>)> = VecDeque::new();
        let mut delivered: Vec<Vec<Delivery<u64>>> = vec![Vec::new(); n];

        for (source, value) in broadcasts {
            let mut step = Step::new();
            endpoints[source.as_usize()].broadcast(value, &mut step);
            for out in step.outgoing {
                inflight.push_back((source, out.to, out.msg));
            }
        }

        while let Some((from, to, msg)) = inflight.pop_front() {
            if drop_rule(from, to, &msg) {
                continue;
            }
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()].extend(step.deliveries);
        }
        delivered
    }

    #[test]
    fn all_correct_processes_deliver() {
        let delivered = run_system(4, vec![(p(0), 42)], |_, _, _| false);
        for (i, deliveries) in delivered.iter().enumerate() {
            assert_eq!(deliveries.len(), 1, "process {i}");
            assert_eq!(deliveries[0].payload, 42);
            assert_eq!(deliveries[0].source, p(0));
            assert_eq!(deliveries[0].seq, SeqNo::new(1));
        }
    }

    #[test]
    fn multiple_broadcasts_same_source_deliver_in_order() {
        let delivered = run_system(4, vec![(p(0), 1), (p(0), 2), (p(0), 3)], |_, _, _| false);
        for deliveries in &delivered {
            let values: Vec<u64> = deliveries.iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![1, 2, 3]);
        }
    }

    #[test]
    fn concurrent_sources_all_deliver() {
        let delivered = run_system(7, vec![(p(0), 10), (p(3), 30), (p(6), 60)], |_, _, _| false);
        for deliveries in &delivered {
            let mut values: Vec<u64> = deliveries.iter().map(|d| d.payload).collect();
            values.sort_unstable();
            assert_eq!(values, vec![10, 30, 60]);
        }
    }

    #[test]
    fn agreement_despite_source_crash_mid_protocol() {
        // The source's INIT reaches everyone, but the source then crashes:
        // its ECHO/READY messages are lost. With echo quorum
        // ⌈(4+1+1)/2⌉ = 3 reachable among the 3 survivors, all deliver.
        let delivered = run_system(4, vec![(p(0), 7)], |from, _to, msg| {
            from == p(0) && !matches!(msg, BrachaMsg::Init { .. })
        });
        for (i, view) in delivered.iter().enumerate().skip(1) {
            assert_eq!(view.len(), 1, "process {i}");
        }
    }

    #[test]
    fn no_delivery_without_quorum() {
        // Drop everything to/from half the system: 2 of 4 reachable is
        // below every quorum, nobody delivers.
        let cut = |proc: ProcessId| proc.index() >= 2;
        let delivered = run_system(4, vec![(p(0), 9)], move |from, to, _| cut(from) || cut(to));
        for deliveries in &delivered {
            assert!(deliveries.is_empty());
        }
    }

    #[test]
    fn equivocating_source_cannot_split_delivery() {
        // A Byzantine source hand-crafts different INITs to different
        // processes. We simulate by injecting raw messages rather than
        // using broadcast().
        let n = 4;
        let mut endpoints: Vec<BrachaBroadcast<u64>> = (0..n)
            .map(|i| BrachaBroadcast::new(p(i as u32), n))
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, BrachaMsg<u64>)> = VecDeque::new();
        // p3 is Byzantine: INIT value 1 to p0/p1, value 2 to p2.
        for (to, value) in [(p(0), 1u64), (p(1), 1), (p(2), 2)] {
            inflight.push_back((
                p(3),
                to,
                BrachaMsg::Init {
                    seq: SeqNo::new(1),
                    payload: value,
                },
            ));
        }
        let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); n];
        while let Some((from, to, msg)) = inflight.pop_front() {
            if to == p(3) {
                continue; // the Byzantine process's own state is irrelevant
            }
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()].extend(step.deliveries.into_iter().map(|d| d.payload));
        }
        // Echo quorum is 3; echoes split 2-vs-1 between the values, and
        // the correct processes never reach READY: nobody delivers either
        // value — and in particular no two deliver different values.
        let all: Vec<&u64> = delivered.iter().flatten().collect();
        assert!(all.len() <= 1 || all.windows(2).all(|w| w[0] == w[1]));
        assert!(delivered[0].is_empty() && delivered[1].is_empty() && delivered[2].is_empty());
    }

    #[test]
    fn thresholds_match_bracha() {
        let endpoint: BrachaBroadcast<u64> = BrachaBroadcast::new(p(0), 4);
        assert_eq!(endpoint.fault_threshold(), 1);
        assert_eq!(endpoint.echo_quorum(), 3);
        assert_eq!(endpoint.ready_amplify(), 2);
        assert_eq!(endpoint.ready_deliver(), 3);

        let endpoint: BrachaBroadcast<u64> = BrachaBroadcast::new(p(0), 10);
        assert_eq!(endpoint.fault_threshold(), 3);
        assert_eq!(endpoint.echo_quorum(), 7);
        assert_eq!(endpoint.ready_deliver(), 7);
    }

    #[test]
    fn single_process_system_self_delivers() {
        let delivered = run_system(1, vec![(p(0), 5)], |_, _, _| false);
        assert_eq!(delivered[0].len(), 1);
        assert_eq!(delivered[0][0].payload, 5);
    }

    #[test]
    fn prune_drops_delivered_instances_and_suppresses_replays() {
        let n = 4;
        let mut endpoints: Vec<BrachaBroadcast<u64>> = (0..n)
            .map(|i| BrachaBroadcast::new(p(i as u32), n))
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, BrachaMsg<u64>)> = VecDeque::new();
        let mut step = Step::new();
        endpoints[0].broadcast(42, &mut step);
        let replay: Vec<_> = step
            .outgoing
            .iter()
            .map(|out| (p(0), out.to, out.msg.clone()))
            .collect();
        for out in step.outgoing {
            inflight.push_back((p(0), out.to, out.msg));
        }
        let mut delivered = 0usize;
        while let Some((from, to, msg)) = inflight.pop_front() {
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered += step.deliveries.len();
        }
        assert_eq!(delivered, n);
        for endpoint in &mut endpoints {
            assert_eq!(endpoint.instance_count(), 1);
            assert_eq!(endpoint.prune_delivered(), 1);
            assert_eq!(endpoint.instance_count(), 0);
            assert_eq!(endpoint.delivered_count(), 1, "count stays monotone");
        }
        // A replayed INIT for the pruned instance must neither re-create
        // state nor re-deliver.
        for (from, to, msg) in replay {
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            assert!(step.deliveries.is_empty(), "replay re-delivered");
            assert!(step.outgoing.is_empty(), "replay re-echoed");
        }
        for endpoint in &endpoints {
            assert_eq!(endpoint.instance_count(), 0, "replay re-created state");
        }
    }

    #[test]
    fn delivery_floor_resumes_a_stream_mid_sequence() {
        let n = 4;
        let mut endpoints: Vec<BrachaBroadcast<u64>> = (0..n)
            .map(|i| BrachaBroadcast::new(p(i as u32), n))
            .collect();
        // A cold-started endpoint learns from a snapshot that source p1
        // already delivered instances 1..=5 — and that its own stream is
        // at 3.
        endpoints[0].set_delivery_floor(p(1), SeqNo::new(5));
        endpoints[0].set_delivery_floor(p(0), SeqNo::new(3));
        let mut step = Step::new();
        assert_eq!(endpoints[0].broadcast(9, &mut step), SeqNo::new(4));
        // Instance 5 from p1 is stale; instance 6 delivers normally.
        let mut inflight: VecDeque<(ProcessId, ProcessId, BrachaMsg<u64>)> = VecDeque::new();
        for seq in [5u64, 6] {
            let mut step = Step::new();
            endpoints[1].on_message(
                p(1),
                BrachaMsg::Init {
                    seq: SeqNo::new(seq),
                    payload: seq,
                },
                &mut step,
            );
            // Drive only endpoint 0's view of p1's INIT/ECHO/READY flow.
            inflight.push_back((
                p(1),
                p(0),
                BrachaMsg::Init {
                    seq: SeqNo::new(seq),
                    payload: seq,
                },
            ));
            for echoer in 1..n {
                inflight.push_back((
                    p(echoer as u32),
                    p(0),
                    BrachaMsg::Ready {
                        source: p(1),
                        seq: SeqNo::new(seq),
                        payload: seq,
                    },
                ));
            }
        }
        let mut got = Vec::new();
        while let Some((from, to, msg)) = inflight.pop_front() {
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            got.extend(step.deliveries.into_iter().map(|d| (d.seq, d.payload)));
        }
        assert_eq!(got, vec![(SeqNo::new(6), 6)]);
    }

    #[test]
    fn debug_and_instance_count() {
        let mut endpoint: BrachaBroadcast<u64> = BrachaBroadcast::new(p(0), 4);
        assert_eq!(endpoint.instance_count(), 0);
        let mut step = Step::new();
        endpoint.on_message(
            p(1),
            BrachaMsg::Init {
                seq: SeqNo::new(1),
                payload: 3,
            },
            &mut step,
        );
        assert_eq!(endpoint.instance_count(), 1);
        assert!(format!("{endpoint:?}").contains("n=4"));
    }
}
