//! The *account-order* secure broadcast of Section 6.
//!
//! For `k`-shared accounts the source-order property is not enough: up to
//! `k` different owners issue transfers for the same account, and benign
//! processes must apply them in the sequence-number order assigned by the
//! account's BFT service. The paper modifies the classical echo broadcast:
//!
//! > "A message with a sequence number `s` associated with an account `a`
//! > is only acknowledged by a benign process if the last message
//! > associated with `a` it delivered had sequence number `s − 1`. Once a
//! > quorum is collected, the sender sends the message equipped with the
//! > signed quorum to all and delivers the message."
//!
//! * **Account order**: benign processes deliver messages of the same
//!   account in sequence order.
//! * **Anti-equivocation**: a benign process acknowledges at most one
//!   message per `(account, seq)`; two conflicting messages can never both
//!   assemble a quorum of `⌈(n+f+1)/2⌉` (any two quorums intersect in a
//!   benign process), so even a fully compromised account can block but
//!   never double-spend.

use crate::auth::Authenticator;
use crate::secure::TraceExtract;
use crate::types::{CryptoOps, Step};
use at_model::codec::{encode, Writer};
use at_model::{AccountId, Encode, ProcessId, SeqNo};
use at_obs::{TraceCtx, TraceEventKind, Tracer};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Wire messages of the account-order broadcast.
#[derive(Clone, Debug, PartialEq)]
pub enum AccountOrderMsg<P, S> {
    /// A sender's payload for `(account, seq)`.
    Send {
        /// The account this message is associated with.
        account: AccountId,
        /// The account's BFT-assigned sequence number.
        seq: SeqNo,
        /// The payload.
        payload: P,
        /// Sender's signature over `(account, seq, payload)`.
        sig: S,
    },
    /// A receiver's conditional acknowledgement (to the sender).
    Ack {
        /// The account.
        account: AccountId,
        /// The acknowledged sequence number.
        seq: SeqNo,
        /// The payload digest.
        digest: [u8; 32],
        /// The acknowledger's signature share.
        share: S,
    },
    /// Payload plus quorum certificate; delivered in account order.
    Final {
        /// The original sender (attribution).
        sender: ProcessId,
        /// The account.
        account: AccountId,
        /// The sequence number.
        seq: SeqNo,
        /// The payload.
        payload: P,
        /// `(acknowledger, share)` quorum certificate.
        certificate: Vec<(ProcessId, S)>,
    },
}

/// A delivery of the account-order broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccountDelivery<P> {
    /// The process that broadcast the message.
    pub sender: ProcessId,
    /// The account the message belongs to.
    pub account: AccountId,
    /// The account sequence number.
    pub seq: SeqNo,
    /// The payload.
    pub payload: P,
}

/// A buffered FINAL: `(source, payload, certificate)`.
type BufferedFinal<P, S> = (ProcessId, P, Vec<(ProcessId, S)>);

struct PendingSend<P> {
    sender: ProcessId,
    payload: P,
}

struct Sending<S> {
    digest: [u8; 32],
    shares: BTreeMap<ProcessId, S>,
    finalized: bool,
}

/// One process's endpoint of the account-order broadcast.
pub struct AccountOrderBroadcast<P, A: Authenticator> {
    me: ProcessId,
    n: usize,
    f: usize,
    auth: A,
    /// Next sequence number each account expects to *deliver*.
    next_deliver: HashMap<AccountId, u64>,
    /// The digest acknowledged per (account, seq) — at most one.
    acked: HashMap<(AccountId, u64), [u8; 32]>,
    /// SENDs waiting for their turn to be acknowledged.
    pending_sends: HashMap<AccountId, BTreeMap<u64, PendingSend<P>>>,
    /// FINALs waiting for their turn to be delivered.
    pending_finals: HashMap<AccountId, BTreeMap<u64, BufferedFinal<P, A::Sig>>>,
    /// Sender-side state of our own broadcasts.
    sending: HashMap<(AccountId, u64), Sending<A::Sig>>,
    /// Deliveries ready for the caller.
    ready: Vec<AccountDelivery<P>>,
    /// Monotone count of deliveries — survives pruning of `ready`.
    delivered_total: usize,
    forward_final: bool,
    /// When set, a `SEND` for account `a` is only acknowledged if it comes
    /// from the process with the same index — the paper's base topology
    /// where account `i` belongs to process `i`. Off by default (Section 6
    /// `k`-shared accounts have several legitimate senders).
    sole_owner: bool,
    ops: CryptoOps,
    tracer: Option<(Tracer, TraceExtract<P>)>,
}

impl<P: Clone + Encode, A: Authenticator> AccountOrderBroadcast<P, A> {
    /// Creates the endpoint for process `me` of `n`.
    pub fn new(me: ProcessId, n: usize, auth: A) -> Self {
        assert!(n >= 1, "at least one process");
        AccountOrderBroadcast {
            me,
            n,
            f: (n - 1) / 3,
            auth,
            next_deliver: HashMap::new(),
            acked: HashMap::new(),
            pending_sends: HashMap::new(),
            pending_finals: HashMap::new(),
            sending: HashMap::new(),
            ready: Vec::new(),
            delivered_total: 0,
            forward_final: true,
            sole_owner: false,
            ops: CryptoOps::default(),
            tracer: None,
        }
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> usize {
        self.f
    }

    /// Enables/disables the sole-owner admission rule: acknowledge a
    /// `SEND` for account `a` only when it comes from process `a` (the
    /// single-owner topology of Sections 2–5). Off by default.
    pub fn set_sole_owner(&mut self, on: bool) {
        self.sole_owner = on;
    }

    /// Number of `(account, seq)` slots with acknowledgement state.
    pub fn instance_count(&self) -> usize {
        self.acked.len()
    }

    /// Cumulative signature operations performed by this endpoint.
    pub fn crypto_ops(&self) -> CryptoOps {
        self.ops
    }

    /// The ack quorum `⌈(n+f+1)/2⌉` ("more than two thirds" in the
    /// paper's prose).
    pub fn quorum(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    /// Enables/disables FINAL forwarding (totality against Byzantine
    /// senders). On by default.
    pub fn set_forward_final(&mut self, forward: bool) {
        self.forward_final = forward;
    }

    /// Routes causal trace events into `tracer` for payloads `extract`
    /// maps to a [`TraceCtx`]. Untraced payloads cost one extractor call
    /// per protocol step and nothing else.
    pub fn set_tracer(&mut self, tracer: Tracer, extract: fn(&P) -> Option<TraceCtx>) {
        self.tracer = Some((tracer, extract));
    }

    /// The tracer handle and the payload's context, hop-adjusted: a
    /// message from another process arrives one causal hop later.
    fn trace_ctx(&self, payload: &P, from: ProcessId) -> Option<(&Tracer, TraceCtx)> {
        let (tracer, extract) = self.tracer.as_ref()?;
        let ctx = extract(payload)?;
        let ctx = if from != self.me { ctx.hopped() } else { ctx };
        Some((tracer, ctx))
    }

    fn trace(&self, payload: &P, from: ProcessId, kind: TraceEventKind, arg: u64) {
        if let Some((tracer, ctx)) = self.trace_ctx(payload, from) {
            tracer.record(ctx, kind, arg);
        }
    }

    /// Broadcasts `payload` as the message with `seq` for `account`.
    ///
    /// The sequence number comes from the account's BFT service (see
    /// `at-core`'s Section 6 implementation); this layer enforces that
    /// benign processes deliver per-account sequences gaplessly and
    /// without forks.
    pub fn broadcast(
        &mut self,
        account: AccountId,
        seq: SeqNo,
        payload: P,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        let digest = payload_digest(&payload);
        self.ops.signs += 1;
        let sig = self.auth.sign(self.me, &send_bytes(account, seq, digest));
        self.sending.insert(
            (account, seq.value()),
            Sending {
                digest,
                shares: BTreeMap::new(),
                finalized: false,
            },
        );
        // Retain our own payload immediately: the ack quorum can complete
        // before our self-addressed SEND is delivered (the network orders
        // the two independently), and certificate assembly recovers the
        // payload from here.
        self.pending_sends
            .entry(account)
            .or_default()
            .entry(seq.value())
            .or_insert(PendingSend {
                sender: self.me,
                payload: payload.clone(),
            });
        self.trace(&payload, self.me, TraceEventKind::Send, self.n as u64);
        step.send_all(
            self.n,
            AccountOrderMsg::Send {
                account,
                seq,
                payload,
                sig,
            },
        );
    }

    /// *Byzantine harness only*: signs and sends conflicting `SEND`s for
    /// `(account, seq)` — `left` to the lower half of the system, `right`
    /// to the upper half. The attacker keeps live sender-side state, so a
    /// quorum of acks for the left payload *would* produce a certificate;
    /// the acknowledgement rule (one digest per `(account, seq)`) is what
    /// denies the quorum to both payloads.
    pub fn broadcast_split(
        &mut self,
        account: AccountId,
        seq: SeqNo,
        left: P,
        right: P,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        let left_digest = payload_digest(&left);
        self.sending.insert(
            (account, seq.value()),
            Sending {
                digest: left_digest,
                shares: BTreeMap::new(),
                finalized: false,
            },
        );
        self.pending_sends
            .entry(account)
            .or_default()
            .entry(seq.value())
            .or_insert(PendingSend {
                sender: self.me,
                payload: left.clone(),
            });
        self.ops.signs += 2;
        let left_sig = self
            .auth
            .sign(self.me, &send_bytes(account, seq, left_digest));
        let right_sig = self
            .auth
            .sign(self.me, &send_bytes(account, seq, payload_digest(&right)));
        for i in 0..self.n {
            let (payload, sig) = if i < self.n / 2 {
                (left.clone(), left_sig.clone())
            } else {
                (right.clone(), right_sig.clone())
            };
            step.send(
                ProcessId::new(i as u32),
                AccountOrderMsg::Send {
                    account,
                    seq,
                    payload,
                    sig,
                },
            );
        }
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: AccountOrderMsg<P, A::Sig>,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        match msg {
            AccountOrderMsg::Send {
                account,
                seq,
                payload,
                sig,
            } => {
                if self.sole_owner && from.index() != account.index() {
                    return; // not the account's owner: never acknowledged
                }
                if self.is_stale(account, seq) {
                    // Already delivered (possibly pruned since): a stale
                    // replay must not re-enter `pending_sends`, where it
                    // would never drain.
                    return;
                }
                self.ops.verifies += 1;
                if !self.auth.verify(
                    from,
                    &send_bytes(account, seq, payload_digest(&payload)),
                    &sig,
                ) {
                    return;
                }
                self.pending_sends
                    .entry(account)
                    .or_default()
                    .entry(seq.value())
                    .or_insert(PendingSend {
                        sender: from,
                        payload,
                    });
                self.try_ack(account, step);
            }
            AccountOrderMsg::Ack {
                account,
                seq,
                digest,
                share,
            } => self.on_ack(from, account, seq, digest, share, step),
            AccountOrderMsg::Final {
                sender,
                account,
                seq,
                payload,
                certificate,
            } => self.on_final(sender, account, seq, payload, certificate, step),
        }
    }

    /// Acknowledges the next-in-sequence pending SEND for `account`, if
    /// its turn has come (paper: ack `s` only after delivering `s − 1`).
    fn try_ack(
        &mut self,
        account: AccountId,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        let expected = *self.next_deliver.entry(account).or_insert(1);
        let Some(slot) = self.pending_sends.get_mut(&account) else {
            return;
        };
        let Some(pending) = slot.get(&expected) else {
            return;
        };
        let digest = payload_digest(&pending.payload);
        // At most one digest acknowledged per (account, seq).
        let acked = self.acked.entry((account, expected)).or_insert(digest);
        if *acked != digest {
            return; // a conflicting message was already acknowledged
        }
        self.ops.signs += 1;
        let share = self
            .auth
            .sign(self.me, &ack_bytes(account, SeqNo::new(expected), digest));
        // Inline (not via `Self::trace`) so the borrow stays on the
        // `tracer` field while `pending` still borrows `pending_sends`.
        if let Some((tracer, extract)) = &self.tracer {
            if let Some(ctx) = extract(&pending.payload) {
                let ctx = if pending.sender != self.me {
                    ctx.hopped()
                } else {
                    ctx
                };
                tracer.record(ctx, TraceEventKind::Echo, expected);
            }
        }
        step.send(
            pending.sender,
            AccountOrderMsg::Ack {
                account,
                seq: SeqNo::new(expected),
                digest,
                share,
            },
        );
    }

    fn on_ack(
        &mut self,
        from: ProcessId,
        account: AccountId,
        seq: SeqNo,
        digest: [u8; 32],
        share: A::Sig,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        self.ops.verifies += 1;
        if !self
            .auth
            .verify(from, &ack_bytes(account, seq, digest), &share)
        {
            return;
        }
        let quorum = self.quorum();
        let n = self.n;
        let me = self.me;
        let Some(state) = self.sending.get_mut(&(account, seq.value())) else {
            return;
        };
        if state.digest != digest || state.finalized {
            return;
        }
        state.shares.insert(from, share);
        if state.shares.len() >= quorum {
            state.finalized = true;
            let certificate: Vec<(ProcessId, A::Sig)> = state
                .shares
                .iter()
                .map(|(process, sig)| (*process, sig.clone()))
                .collect();
            // Recover the payload from our pending sends (we sent it to
            // ourselves too).
            let payload = self
                .pending_sends
                .get(&account)
                .and_then(|slot| slot.get(&seq.value()))
                .map(|pending| pending.payload.clone())
                .expect("sender retains its own payload");
            self.trace(
                &payload,
                me,
                TraceEventKind::Ready,
                certificate.len() as u64,
            );
            step.send_all(
                n,
                AccountOrderMsg::Final {
                    sender: me,
                    account,
                    seq,
                    payload,
                    certificate,
                },
            );
        }
    }

    fn on_final(
        &mut self,
        sender: ProcessId,
        account: AccountId,
        seq: SeqNo,
        payload: P,
        certificate: Vec<(ProcessId, A::Sig)>,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        if self.is_stale(account, seq) {
            // A replayed FINAL below the delivery floor would re-verify
            // its certificate and park forever in `pending_finals`.
            return;
        }
        let digest = payload_digest(&payload);
        let span = self
            .trace_ctx(&payload, sender)
            .map(|(tracer, ctx)| (tracer.clone(), ctx));
        if let Some((tracer, ctx)) = &span {
            tracer.record(*ctx, TraceEventKind::VerifyStart, certificate.len() as u64);
        }
        let mut signers = BTreeMap::new();
        for (signer, share) in &certificate {
            self.ops.verifies += 1;
            if self
                .auth
                .verify(*signer, &ack_bytes(account, seq, digest), share)
            {
                signers.insert(*signer, ());
            }
        }
        if let Some((tracer, ctx)) = &span {
            tracer.record(*ctx, TraceEventKind::VerifyEnd, signers.len() as u64);
        }
        if signers.len() < self.quorum() {
            return;
        }
        let finals = self.pending_finals.entry(account).or_default();
        if finals.contains_key(&seq.value()) {
            return; // duplicate
        }
        finals.insert(seq.value(), (sender, payload, certificate));
        self.drain_deliveries(account, step);
    }

    fn drain_deliveries(
        &mut self,
        account: AccountId,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
    ) {
        loop {
            let expected = *self.next_deliver.entry(account).or_insert(1);
            let Some((sender, payload, certificate)) = self
                .pending_finals
                .get_mut(&account)
                .and_then(|finals| finals.remove(&expected))
            else {
                break;
            };
            self.next_deliver.insert(account, expected + 1);
            // Drop the satisfied pending send.
            if let Some(slot) = self.pending_sends.get_mut(&account) {
                slot.remove(&expected);
            }
            if self.forward_final {
                step.send_all(
                    self.n,
                    AccountOrderMsg::Final {
                        sender,
                        account,
                        seq: SeqNo::new(expected),
                        payload: payload.clone(),
                        certificate,
                    },
                );
            }
            let delivery = AccountDelivery {
                sender,
                account,
                seq: SeqNo::new(expected),
                payload,
            };
            self.trace(&delivery.payload, sender, TraceEventKind::Deliver, expected);
            self.delivered_total += 1;
            self.ready.push(delivery.clone());
            step.deliver(sender, SeqNo::new(expected), delivery);
            // A delivery may unblock the acknowledgement of the next SEND.
            self.try_ack(account, step);
        }
    }

    /// The next sequence number this process will deliver for `account`.
    pub fn expected(&self, account: AccountId) -> SeqNo {
        SeqNo::new(self.next_deliver.get(&account).copied().unwrap_or(1))
    }

    /// Deliveries made so far and not yet pruned, in delivery order.
    pub fn delivered(&self) -> &[AccountDelivery<P>] {
        &self.ready
    }

    /// Total number of deliveries ever made (monotone across pruning).
    pub fn delivered_count(&self) -> usize {
        self.delivered_total
    }

    /// Whether `(account, seq)` is behind the account's delivery floor —
    /// already delivered, so its state may be pruned and any message for
    /// it is a replay.
    fn is_stale(&self, account: AccountId, seq: SeqNo) -> bool {
        seq.value() < self.next_deliver.get(&account).copied().unwrap_or(1)
    }

    /// Drops per-instance state behind each account's delivery floor:
    /// acknowledgement slots, finalized sender state, buffered SENDs and
    /// FINALs, and the retained delivery log. Returns the number of
    /// acknowledgement slots pruned (the [`Self::instance_count`] unit).
    /// Late messages for pruned instances are rejected by the floor
    /// checks, so delivery stays exactly-once per `(account, seq)`.
    pub fn prune_delivered(&mut self) -> usize {
        let floors = &self.next_deliver;
        let floor_of = |account: &AccountId| floors.get(account).copied().unwrap_or(1);
        let before = self.acked.len();
        self.acked
            .retain(|(account, seq), _| *seq >= floor_of(account));
        self.sending
            .retain(|(account, seq), state| !(state.finalized && *seq < floor_of(account)));
        for (account, slot) in self.pending_sends.iter_mut() {
            let floor = floor_of(account);
            *slot = slot.split_off(&floor);
        }
        for (account, slot) in self.pending_finals.iter_mut() {
            let floor = floor_of(account);
            *slot = slot.split_off(&floor);
        }
        self.pending_sends.retain(|_, slot| !slot.is_empty());
        self.pending_finals.retain(|_, slot| !slot.is_empty());
        self.ready.clear();
        before - self.acked.len()
    }

    /// Raises the delivery floor of `account` so sequence numbers
    /// `≤ floor` are treated as already delivered and the account's
    /// stream resumes gaplessly at `floor + 1`. Never lowers an existing
    /// floor. Cold-started replicas seed floors from a snapshot with
    /// this before replaying the log suffix.
    pub fn set_delivery_floor(&mut self, account: AccountId, floor: SeqNo) {
        let next = self.next_deliver.entry(account).or_insert(1);
        if floor.value() + 1 > *next {
            *next = floor.value() + 1;
        }
        let next = *next;
        self.acked
            .retain(|(a, seq), _| !(*a == account && *seq < next));
        self.sending
            .retain(|(a, seq), _| !(*a == account && *seq < next));
        if let Some(slot) = self.pending_sends.get_mut(&account) {
            *slot = slot.split_off(&next);
        }
        if let Some(slot) = self.pending_finals.get_mut(&account) {
            *slot = slot.split_off(&next);
        }
        self.ready
            .retain(|d| !(d.account == account && d.seq.value() < next));
    }
}

impl<P: Clone + Encode, A: Authenticator> fmt::Debug for AccountOrderBroadcast<P, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AccountOrderBroadcast(me={}, n={}, delivered={})",
            self.me, self.n, self.delivered_total
        )
    }
}

fn payload_digest<P: Encode>(payload: &P) -> [u8; 32] {
    at_crypto::Sha256::digest(&encode(payload))
}

fn send_bytes(account: AccountId, seq: SeqNo, digest: [u8; 32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(b'a');
    account.encode(&mut w);
    seq.encode(&mut w);
    w.put_bytes(&digest);
    w.into_bytes()
}

fn ack_bytes(account: AccountId, seq: SeqNo, digest: [u8; 32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(b'k');
    account.encode(&mut w);
    seq.encode(&mut w);
    w.put_bytes(&digest);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::NoAuth;
    use std::collections::VecDeque;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn acct(i: u32) -> AccountId {
        AccountId::new(i)
    }

    type Endpoint = AccountOrderBroadcast<u64, NoAuth>;
    type Wire = (ProcessId, ProcessId, AccountOrderMsg<u64, ()>);

    fn run(
        endpoints: &mut [Endpoint],
        mut inflight: VecDeque<Wire>,
        drop_rule: impl Fn(&Wire) -> bool,
    ) {
        while let Some(wire) = inflight.pop_front() {
            if drop_rule(&wire) {
                continue;
            }
            let (from, to, msg) = wire;
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
        }
    }

    fn start(
        endpoints: &mut [Endpoint],
        sender: ProcessId,
        account: AccountId,
        seq: u64,
        value: u64,
    ) -> VecDeque<Wire> {
        let mut step = Step::new();
        endpoints[sender.as_usize()].broadcast(account, SeqNo::new(seq), value, &mut step);
        step.outgoing
            .into_iter()
            .map(|out| (sender, out.to, out.msg))
            .collect()
    }

    fn system(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| AccountOrderBroadcast::new(p(i as u32), n, NoAuth))
            .collect()
    }

    #[test]
    fn in_order_broadcasts_deliver_everywhere() {
        let mut endpoints = system(4);
        let mut wires = start(&mut endpoints, p(0), acct(0), 1, 100);
        wires.extend(start(&mut endpoints, p(1), acct(0), 2, 200));
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            let values: Vec<u64> = endpoint.delivered().iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![100, 200]);
            assert_eq!(endpoint.expected(acct(0)), SeqNo::new(3));
        }
    }

    #[test]
    fn out_of_order_seq_waits_for_predecessor() {
        let mut endpoints = system(4);
        // seq 2 first: nobody acks, nothing delivers.
        let wires = start(&mut endpoints, p(0), acct(0), 2, 200);
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            assert!(endpoint.delivered().is_empty());
        }
        // seq 1 arrives: both deliver in order.
        let wires = start(&mut endpoints, p(1), acct(0), 1, 100);
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            let values: Vec<u64> = endpoint.delivered().iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![100, 200]);
        }
    }

    #[test]
    fn conflicting_same_seq_messages_block_but_never_fork() {
        let mut endpoints = system(4);
        // Two owners both claim seq 1 with different payloads (the
        // compromised-account scenario of Section 6).
        let mut wires = start(&mut endpoints, p(0), acct(0), 1, 111);
        wires.extend(start(&mut endpoints, p(1), acct(0), 1, 222));
        run(&mut endpoints, wires, |_| false);
        // Every process delivered at most one value, and no two processes
        // delivered different values for seq 1.
        let mut seen = std::collections::HashSet::new();
        for endpoint in &endpoints {
            assert!(endpoint.delivered().len() <= 1);
            for delivery in endpoint.delivered() {
                seen.insert(delivery.payload);
            }
        }
        assert!(seen.len() <= 1, "forked deliveries: {seen:?}");
    }

    #[test]
    fn accounts_are_independent_streams() {
        let mut endpoints = system(4);
        let mut wires = start(&mut endpoints, p(0), acct(0), 1, 1);
        wires.extend(start(&mut endpoints, p(1), acct(1), 1, 2));
        // A gap on account 2 does not block account 0/1.
        wires.extend(start(&mut endpoints, p(2), acct(2), 5, 3));
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            let mut delivered: Vec<(AccountId, u64)> = endpoint
                .delivered()
                .iter()
                .map(|d| (d.account, d.payload))
                .collect();
            delivered.sort();
            assert_eq!(delivered, vec![(acct(0), 1), (acct(1), 2)]);
        }
    }

    #[test]
    fn delivery_unblocks_next_ack() {
        let mut endpoints = system(4);
        // Both seq 1 and seq 2 are in flight concurrently; receivers must
        // ack 2 only after delivering 1 — and they eventually do.
        let mut wires = start(&mut endpoints, p(0), acct(7), 2, 20);
        wires.extend(start(&mut endpoints, p(0), acct(7), 1, 10));
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            let values: Vec<u64> = endpoint.delivered().iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![10, 20]);
        }
    }

    #[test]
    fn forwarding_gives_totality() {
        let mut endpoints = system(4);
        let wires = start(&mut endpoints, p(0), acct(0), 1, 9);
        // p0's FINAL only reaches p1.
        run(&mut endpoints, wires, |(from, to, msg)| {
            matches!(msg, AccountOrderMsg::Final { .. }) && *from == p(0) && *to != p(1)
        });
        for (i, endpoint) in endpoints.iter().enumerate() {
            assert_eq!(endpoint.delivered().len(), 1, "process {i}");
        }
    }

    #[test]
    fn prune_drops_delivered_state_and_suppresses_replays() {
        let mut endpoints = system(4);
        let mut wires = start(&mut endpoints, p(0), acct(0), 1, 100);
        wires.extend(start(&mut endpoints, p(0), acct(0), 2, 200));
        // Capture a FINAL for seq 1 to replay after pruning.
        let mut replay = None;
        while let Some(wire) = wires.pop_front() {
            if replay.is_none() {
                if let AccountOrderMsg::Final { seq, .. } = &wire.2 {
                    if seq.value() == 1 {
                        replay = Some(wire.2.clone());
                    }
                }
            }
            let (from, to, msg) = wire;
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                wires.push_back((to, out.to, out.msg));
            }
        }
        for endpoint in &mut endpoints {
            assert_eq!(endpoint.delivered_count(), 2);
            assert_eq!(endpoint.instance_count(), 2);
            let pruned = endpoint.prune_delivered();
            assert_eq!(pruned, 2);
            assert_eq!(endpoint.instance_count(), 0);
            assert!(endpoint.delivered().is_empty(), "ready log drained");
            assert_eq!(endpoint.delivered_count(), 2, "monotone across pruning");
        }
        // A replayed FINAL below the floor must not re-deliver or park in
        // pending_finals.
        let replay = replay.expect("a FINAL for seq 1 circulated");
        let mut step = Step::new();
        endpoints[2].on_message(p(0), replay, &mut step);
        assert!(step.deliveries.is_empty());
        assert_eq!(endpoints[2].delivered_count(), 2);
        assert_eq!(endpoints[2].prune_delivered(), 0, "no residue to prune");
    }

    #[test]
    fn delivery_floor_resumes_an_account_mid_sequence() {
        let mut endpoints = system(4);
        for endpoint in &mut endpoints {
            endpoint.set_delivery_floor(acct(0), SeqNo::new(4));
        }
        assert_eq!(endpoints[0].expected(acct(0)), SeqNo::new(5));
        // seq 4 is below the floor: ignored everywhere. seq 5 delivers.
        let wires = start(&mut endpoints, p(0), acct(0), 4, 40);
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            assert_eq!(endpoint.delivered_count(), 0);
        }
        let wires = start(&mut endpoints, p(0), acct(0), 5, 50);
        run(&mut endpoints, wires, |_| false);
        for endpoint in &endpoints {
            let values: Vec<u64> = endpoint.delivered().iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![50]);
        }
    }

    #[test]
    fn quorum_and_debug() {
        let endpoint: Endpoint = AccountOrderBroadcast::new(p(0), 4, NoAuth);
        assert_eq!(endpoint.quorum(), 3);
        assert!(format!("{endpoint:?}").contains("delivered=0"));
    }
}
