//! Signed-echo secure broadcast (Malkhi–Reiter 1997, references [35, 36]
//! of the paper).
//!
//! The sender transmits its signed payload; receivers acknowledge with a
//! signed echo *to the sender only*; once the sender collects a quorum of
//! `⌈(n+f+1)/2⌉` echoes it sends the payload together with the quorum
//! certificate to all, and everyone delivers after verifying the
//! certificate. Two round trips and `O(n)` messages on the sender path
//! (plus an `O(n²)` certificate-forwarding step that guarantees totality
//! when the sender is Byzantine — disable with
//! [`EchoBroadcast::set_forward_final`] for the ablation study A1).
//!
//! A benign process echoes at most one payload per `(source, seq)`, so two
//! conflicting payloads can never both obtain certificates: this is the
//! *consistency* that prevents equivocation — and, one level up, double
//! spending.

use crate::auth::{Authenticator, BatchVerifyItem};
use crate::secure::TraceExtract;
use crate::types::{CryptoOps, SourceOrderBuffer, Step};
use at_model::codec::{encode, Writer};
use at_model::{Encode, ProcessId, SeqNo};
use at_obs::{TraceCtx, TraceEventKind, Tracer};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Wire messages of the signed-echo broadcast.
#[derive(Clone, Debug, PartialEq)]
pub enum EchoMsg<P, S> {
    /// The sender's signed payload.
    Send {
        /// Sender's sequence number.
        seq: SeqNo,
        /// The payload.
        payload: P,
        /// Sender's signature over `(source, seq, payload)`.
        sig: S,
    },
    /// A receiver's signed acknowledgement, sent back to the source.
    Echo {
        /// The instance source.
        source: ProcessId,
        /// The instance sequence number.
        seq: SeqNo,
        /// The payload digest being acknowledged.
        digest: [u8; 32],
        /// The echoer's signature share.
        share: S,
    },
    /// The payload plus its echo-quorum certificate.
    Final {
        /// The instance source.
        source: ProcessId,
        /// The instance sequence number.
        seq: SeqNo,
        /// The payload.
        payload: P,
        /// Sender's original signature.
        sig: S,
        /// `(echoer, share)` pairs forming the quorum certificate.
        certificate: Vec<(ProcessId, S)>,
    },
}

struct SendState<S> {
    digest: [u8; 32],
    shares: BTreeMap<ProcessId, S>,
    finalized: bool,
}

/// One process's endpoint of the signed-echo broadcast.
pub struct EchoBroadcast<P, A: Authenticator> {
    me: ProcessId,
    n: usize,
    f: usize,
    auth: A,
    next_seq: SeqNo,
    /// Sender-side state for our own broadcasts.
    sending: HashMap<SeqNo, (P, SendState<A::Sig>)>,
    /// Sender-side state for the *second* payload of a split broadcast
    /// ([`EchoBroadcast::broadcast_split`]): the strongest attacker
    /// collects shares for both sides and would certify either the moment
    /// a quorum formed. With the correct quorum `⌈(n+f+1)/2⌉` this state
    /// never finalizes (quorum intersection), so keeping it live makes
    /// the tests exercise the defense — and makes a broken quorum
    /// (`broken` feature) actually observable as a double certificate.
    split_shadow: HashMap<SeqNo, (P, SendState<A::Sig>)>,
    /// Receiver-side: the digest we echoed per instance (one per
    /// instance — the anti-equivocation rule).
    echoed: HashMap<(ProcessId, SeqNo), [u8; 32]>,
    /// Instances already delivered (to forward and dedup).
    delivered: HashMap<(ProcessId, SeqNo), ()>,
    /// Monotone count of deliveries — survives pruning, unlike
    /// `delivered.len()`.
    delivered_total: usize,
    order: SourceOrderBuffer<P>,
    forward_final: bool,
    ops: CryptoOps,
    tracer: Option<(Tracer, TraceExtract<P>)>,
    /// Mutation-testing hook: overrides [`EchoBroadcast::quorum`].
    #[cfg(feature = "broken")]
    quorum_override: Option<usize>,
}

impl<P: Clone + Encode, A: Authenticator> EchoBroadcast<P, A> {
    /// Creates the endpoint for process `me` of `n`, using `auth` for
    /// signatures; tolerates `f = ⌊(n−1)/3⌋` Byzantine processes.
    pub fn new(me: ProcessId, n: usize, auth: A) -> Self {
        assert!(n >= 1, "at least one process");
        EchoBroadcast {
            me,
            n,
            f: (n - 1) / 3,
            auth,
            next_seq: SeqNo::ZERO,
            sending: HashMap::new(),
            split_shadow: HashMap::new(),
            echoed: HashMap::new(),
            delivered: HashMap::new(),
            delivered_total: 0,
            order: SourceOrderBuffer::new(),
            forward_final: true,
            ops: CryptoOps::default(),
            tracer: None,
            #[cfg(feature = "broken")]
            quorum_override: None,
        }
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> usize {
        self.f
    }

    /// Number of broadcast instances with local protocol state (one entry
    /// per `(source, seq)` this endpoint echoed).
    pub fn instance_count(&self) -> usize {
        self.echoed.len()
    }

    /// Cumulative signature operations performed by this endpoint.
    pub fn crypto_ops(&self) -> CryptoOps {
        self.ops
    }

    /// Enables/disables certificate forwarding on delivery (totality for
    /// Byzantine senders). On by default.
    pub fn set_forward_final(&mut self, forward: bool) {
        self.forward_final = forward;
    }

    /// Routes causal trace events into `tracer` for payloads `extract`
    /// maps to a [`TraceCtx`]. Untraced payloads cost one extractor call
    /// per protocol step and nothing else.
    pub fn set_tracer(&mut self, tracer: Tracer, extract: fn(&P) -> Option<TraceCtx>) {
        self.tracer = Some((tracer, extract));
    }

    /// The tracer handle and the payload's context, hop-adjusted: a
    /// message from another process arrives one causal hop later.
    fn trace_ctx(&self, payload: &P, from: ProcessId) -> Option<(&Tracer, TraceCtx)> {
        let (tracer, extract) = self.tracer.as_ref()?;
        let ctx = extract(payload)?;
        let ctx = if from != self.me { ctx.hopped() } else { ctx };
        Some((tracer, ctx))
    }

    fn trace(&self, payload: &P, from: ProcessId, kind: TraceEventKind, arg: u64) {
        if let Some((tracer, ctx)) = self.trace_ctx(payload, from) {
            tracer.record(ctx, kind, arg);
        }
    }

    /// The echo quorum `⌈(n+f+1)/2⌉`.
    pub fn quorum(&self) -> usize {
        #[cfg(feature = "broken")]
        if let Some(quorum) = self.quorum_override {
            return quorum;
        }
        (self.n + self.f) / 2 + 1
    }

    /// **Mutation-testing hook** (`broken` feature only): replaces the
    /// echo quorum with `quorum` on this endpoint — both for forming
    /// certificates as a sender and for accepting them as a receiver. An
    /// off-by-one below `⌈(n+f+1)/2⌉` breaks quorum intersection, which
    /// lets an equivocating sender certify *both* sides of a split
    /// broadcast; whether correct replicas then diverge depends on the
    /// delivery schedule — exactly the class of bug the `at-check`
    /// explorer exists to catch, and the seeded mutation CI requires it
    /// to keep catching.
    #[cfg(feature = "broken")]
    pub fn set_quorum_override(&mut self, quorum: usize) {
        self.quorum_override = Some(quorum);
    }

    /// Starts broadcasting `payload`; returns the sequence number used.
    pub fn broadcast(&mut self, payload: P, step: &mut Step<EchoMsg<P, A::Sig>, P>) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        let digest = payload_digest(&payload);
        self.ops.signs += 1;
        let sig = self.auth.sign(self.me, &send_bytes(self.me, seq, digest));
        self.sending.insert(
            seq,
            (
                payload.clone(),
                SendState {
                    digest,
                    shares: BTreeMap::new(),
                    finalized: false,
                },
            ),
        );
        self.trace(&payload, self.me, TraceEventKind::Send, self.n as u64);
        step.send_all(self.n, EchoMsg::Send { seq, payload, sig });
        seq
    }

    /// *Byzantine harness only*: signs and sends conflicting `SEND`s for
    /// one instance — `left` to the lower half of the system, `right` to
    /// the upper half. The attacker owns its key, so both signatures are
    /// genuine, and it keeps live sender-side state for the instance: if
    /// either digest ever reached the echo quorum, the attacker *would*
    /// assemble and broadcast a certificate. The anti-equivocation rule
    /// (a benign process echoes one digest per instance) is therefore
    /// what actually denies the quorum — tests on this path exercise the
    /// defense, not a dead sender.
    pub fn broadcast_split(
        &mut self,
        left: P,
        right: P,
        step: &mut Step<EchoMsg<P, A::Sig>, P>,
    ) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        let left_digest = payload_digest(&left);
        self.ops.signs += 2;
        let left_sig = self
            .auth
            .sign(self.me, &send_bytes(self.me, seq, left_digest));
        let right_sig = self
            .auth
            .sign(self.me, &send_bytes(self.me, seq, payload_digest(&right)));
        // Collect echo shares for *both* payloads: the strongest attacker
        // would certify whichever side ever reached a quorum. With the
        // correct quorum ⌈(n+f+1)/2⌉ neither can (each half of the system
        // is below it, and any two quorums intersect in a benign
        // process), so this state is inert — unless the quorum itself is
        // broken, which is what the mutation tests seed.
        self.sending.insert(
            seq,
            (
                left.clone(),
                SendState {
                    digest: left_digest,
                    shares: BTreeMap::new(),
                    finalized: false,
                },
            ),
        );
        self.split_shadow.insert(
            seq,
            (
                right.clone(),
                SendState {
                    digest: payload_digest(&right),
                    shares: BTreeMap::new(),
                    finalized: false,
                },
            ),
        );
        for i in 0..self.n {
            let (payload, sig) = if i < self.n / 2 {
                (left.clone(), left_sig.clone())
            } else {
                (right.clone(), right_sig.clone())
            };
            step.send(
                ProcessId::new(i as u32),
                EchoMsg::Send { seq, payload, sig },
            );
        }
        seq
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: EchoMsg<P, A::Sig>,
        step: &mut Step<EchoMsg<P, A::Sig>, P>,
    ) {
        match msg {
            EchoMsg::Send { seq, payload, sig } => self.on_send(from, seq, payload, sig, step),
            EchoMsg::Echo {
                source,
                seq,
                digest,
                share,
            } => self.on_echo(from, source, seq, digest, share, step),
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate,
            } => self.on_final(source, seq, payload, sig, certificate, step),
        }
    }

    fn on_send(
        &mut self,
        from: ProcessId,
        seq: SeqNo,
        payload: P,
        sig: A::Sig,
        step: &mut Step<EchoMsg<P, A::Sig>, P>,
    ) {
        if self.is_stale(from, seq) {
            return; // instance already released and pruned
        }
        let digest = payload_digest(&payload);
        self.ops.verifies += 1;
        if !self.auth.verify(from, &send_bytes(from, seq, digest), &sig) {
            return; // forged SEND
        }
        // Echo at most one digest per instance: the anti-equivocation rule.
        let entry = self.echoed.entry((from, seq));
        let previously = match &entry {
            std::collections::hash_map::Entry::Occupied(o) => Some(*o.get()),
            std::collections::hash_map::Entry::Vacant(_) => None,
        };
        match previously {
            Some(echoed) if echoed != digest => return, // equivocation: stay silent
            Some(_) => {} // duplicate SEND: re-echo (idempotent for the sender)
            None => {
                entry.or_insert(digest);
            }
        }
        self.ops.signs += 1;
        let share = self.auth.sign(self.me, &echo_bytes(from, seq, digest));
        self.trace(&payload, from, TraceEventKind::Echo, seq.value());
        step.send(
            from,
            EchoMsg::Echo {
                source: from,
                seq,
                digest,
                share,
            },
        );
    }

    fn on_echo(
        &mut self,
        from: ProcessId,
        source: ProcessId,
        seq: SeqNo,
        digest: [u8; 32],
        share: A::Sig,
        step: &mut Step<EchoMsg<P, A::Sig>, P>,
    ) {
        if source != self.me {
            return; // echoes are addressed to the instance's sender
        }
        self.ops.verifies += 1;
        if !self
            .auth
            .verify(from, &echo_bytes(source, seq, digest), &share)
        {
            return; // invalid share
        }
        let quorum = self.quorum();
        let n = self.n;
        let me = self.me;
        // The share may be for our primary payload or, after a split
        // broadcast, for the shadow side — each accumulates separately.
        let primary_matches = self
            .sending
            .get(&seq)
            .is_some_and(|(_, state)| state.digest == digest);
        let slot = if primary_matches {
            self.sending.get_mut(&seq)
        } else {
            self.split_shadow
                .get_mut(&seq)
                .filter(|(_, state)| state.digest == digest)
        };
        let Some((payload, state)) = slot else {
            return; // echo for an unknown/finished broadcast
        };
        if state.finalized {
            return;
        }
        state.shares.insert(from, share);
        if state.shares.len() < quorum {
            return;
        }
        state.finalized = true;
        let certificate: Vec<(ProcessId, A::Sig)> = state
            .shares
            .iter()
            .map(|(process, sig)| (*process, sig.clone()))
            .collect();
        let payload = payload.clone();
        self.ops.signs += 1;
        let sig = self.auth.sign(me, &send_bytes(me, seq, digest));
        self.trace(
            &payload,
            me,
            TraceEventKind::Ready,
            certificate.len() as u64,
        );
        step.send_all(
            n,
            EchoMsg::Final {
                source: me,
                seq,
                payload,
                sig,
                certificate,
            },
        );
    }

    fn on_final(
        &mut self,
        source: ProcessId,
        seq: SeqNo,
        payload: P,
        sig: A::Sig,
        certificate: Vec<(ProcessId, A::Sig)>,
        step: &mut Step<EchoMsg<P, A::Sig>, P>,
    ) {
        if self.is_stale(source, seq) || self.delivered.contains_key(&(source, seq)) {
            return; // already delivered (possibly pruned since)
        }
        let digest = payload_digest(&payload);
        self.ops.verifies += 1;
        if !self
            .auth
            .verify(source, &send_bytes(source, seq, digest), &sig)
        {
            return;
        }
        // Validate the certificate: distinct signers, valid shares,
        // quorum. Every share signs the same echo bytes, so the whole
        // certificate is checked in one batched pass; only a failing
        // batch falls back to per-share verification (inside
        // `verify_batch`) to attribute the bad shares.
        let echo = echo_bytes(source, seq, digest);
        let items: Vec<BatchVerifyItem<'_, A::Sig>> = certificate
            .iter()
            .map(|(signer, share)| BatchVerifyItem {
                signer: *signer,
                bytes: &echo,
                sig: share,
            })
            .collect();
        self.ops.verifies += certificate.len() as u64;
        let span = self
            .trace_ctx(&payload, source)
            .map(|(tracer, ctx)| (tracer.clone(), ctx));
        if let Some((tracer, ctx)) = &span {
            tracer.record(*ctx, TraceEventKind::VerifyStart, items.len() as u64);
        }
        let mut signers = BTreeMap::new();
        match self.auth.verify_batch(&items) {
            Ok(()) => {
                for (signer, _) in &certificate {
                    signers.insert(*signer, ());
                }
            }
            Err(bad) => {
                for (index, (signer, _)) in certificate.iter().enumerate() {
                    if bad.binary_search(&index).is_err() {
                        signers.insert(*signer, ());
                    }
                }
            }
        }
        if let Some((tracer, ctx)) = &span {
            tracer.record(*ctx, TraceEventKind::VerifyEnd, signers.len() as u64);
        }
        if signers.len() < self.quorum() {
            return;
        }
        self.delivered.insert((source, seq), ());
        self.delivered_total += 1;
        if self.forward_final {
            step.send_all(
                self.n,
                EchoMsg::Final {
                    source,
                    seq,
                    payload: payload.clone(),
                    sig,
                    certificate,
                },
            );
        }
        for (released_seq, released) in self.order.offer(source, seq, payload) {
            self.trace(
                &released,
                source,
                TraceEventKind::Deliver,
                released_seq.value(),
            );
            step.deliver(source, released_seq, released);
        }
    }

    /// Number of instances delivered so far (monotone across pruning).
    pub fn delivered_count(&self) -> usize {
        self.delivered_total
    }

    /// Whether `(source, seq)` is behind the source's release floor —
    /// i.e. the instance was already handed up in order, so any echo or
    /// dedup state for it may have been pruned and any message for it is
    /// a replay.
    fn is_stale(&self, source: ProcessId, seq: SeqNo) -> bool {
        seq.value() < self.order.expected(source).value()
    }

    /// Drops per-instance state (echoed digests, delivery dedup entries,
    /// finalized sender state) for instances already released by the
    /// source-order buffer. Returns the number of instances pruned.
    /// Late `FINAL`s for a pruned instance are rejected by the release
    /// floor, so delivery stays irrevocable and exactly-once.
    pub fn prune_delivered(&mut self) -> usize {
        let order = &self.order;
        let before = self.echoed.len();
        self.echoed
            .retain(|(source, seq), _| seq.value() >= order.expected(*source).value());
        self.delivered
            .retain(|(source, seq), _| seq.value() >= order.expected(*source).value());
        let own_floor = order.expected(self.me).value();
        self.sending
            .retain(|seq, (_, state)| !(state.finalized && seq.value() < own_floor));
        self.split_shadow.retain(|seq, _| seq.value() >= own_floor);
        before - self.echoed.len()
    }

    /// Raises the delivery floor for `source` so instances `≤ floor` are
    /// treated as already delivered and the stream resumes gaplessly at
    /// `floor + 1`. When `source` is this endpoint, also fast-forwards
    /// its own next sequence number. Used by cold-started replicas
    /// bootstrapping from a snapshot.
    pub fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        self.order.advance(source, floor);
        if source == self.me && floor.value() > self.next_seq.value() {
            self.next_seq = floor;
        }
        self.echoed
            .retain(|(s, seq), _| !(*s == source && seq.value() <= floor.value()));
        self.delivered
            .retain(|(s, seq), _| !(*s == source && seq.value() <= floor.value()));
        if source == self.me {
            self.sending.retain(|seq, _| seq.value() > floor.value());
            self.split_shadow
                .retain(|seq, _| seq.value() > floor.value());
        }
    }
}

impl<P: Clone + Encode, A: Authenticator> fmt::Debug for EchoBroadcast<P, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EchoBroadcast(me={}, n={}, f={}, delivered={})",
            self.me, self.n, self.f, self.delivered_total
        )
    }
}

fn payload_digest<P: Encode>(payload: &P) -> [u8; 32] {
    at_crypto::Sha256::digest(&encode(payload))
}

/// Domain-separated bytes the sender signs.
fn send_bytes(source: ProcessId, seq: SeqNo, digest: [u8; 32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(b'S');
    source.encode(&mut w);
    seq.encode(&mut w);
    w.put_bytes(&digest);
    w.into_bytes()
}

/// Domain-separated bytes an echoer signs.
fn echo_bytes(source: ProcessId, seq: SeqNo, digest: [u8; 32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(b'E');
    source.encode(&mut w);
    seq.encode(&mut w);
    w.put_bytes(&digest);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{EdAuth, NoAuth};
    use crate::types::Delivery;
    use std::collections::VecDeque;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run_system<A: Authenticator>(
        n: usize,
        auth: impl Fn(ProcessId) -> A,
        broadcasts: Vec<(ProcessId, u64)>,
        drop_rule: impl Fn(ProcessId, ProcessId, &EchoMsg<u64, A::Sig>) -> bool,
    ) -> Vec<Vec<Delivery<u64>>> {
        let mut endpoints: Vec<EchoBroadcast<u64, A>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, auth(p(i as u32))))
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, EchoMsg<u64, A::Sig>)> = VecDeque::new();
        let mut delivered: Vec<Vec<Delivery<u64>>> = vec![Vec::new(); n];

        for (source, value) in broadcasts {
            let mut step = Step::new();
            endpoints[source.as_usize()].broadcast(value, &mut step);
            for out in step.outgoing {
                inflight.push_back((source, out.to, out.msg));
            }
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            if drop_rule(from, to, &msg) {
                continue;
            }
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()].extend(step.deliveries);
        }
        delivered
    }

    #[test]
    fn all_deliver_with_no_auth() {
        let delivered = run_system(4, |_| NoAuth, vec![(p(0), 42)], |_, _, _| false);
        for deliveries in &delivered {
            assert_eq!(deliveries.len(), 1);
            assert_eq!(deliveries[0].payload, 42);
        }
    }

    #[test]
    fn all_deliver_with_real_signatures() {
        let auth = EdAuth::deterministic(4, 7);
        let delivered = run_system(4, |_| auth.clone(), vec![(p(1), 9)], |_, _, _| false);
        for deliveries in &delivered {
            assert_eq!(deliveries.len(), 1);
            assert_eq!(deliveries[0].payload, 9);
            assert_eq!(deliveries[0].source, p(1));
        }
    }

    #[test]
    fn source_order_is_fifo() {
        let delivered = run_system(
            4,
            |_| NoAuth,
            vec![(p(2), 1), (p(2), 2), (p(2), 3)],
            |_, _, _| false,
        );
        for deliveries in &delivered {
            let values: Vec<u64> = deliveries.iter().map(|d| d.payload).collect();
            assert_eq!(values, vec![1, 2, 3]);
        }
    }

    #[test]
    fn forged_send_is_ignored() {
        // p3 injects a SEND claiming to be from p0 (wrong signature).
        let auth = EdAuth::deterministic(4, 1);
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, EdAuth>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, auth.clone()))
            .collect();
        // Craft a SEND with p3's signature but deliver it as "from p0" is
        // impossible in the sim (channels are authenticated); instead the
        // adversary sends from itself with a *bad* signature.
        let bad_sig = auth.sign(p(3), b"garbage");
        let mut step = Step::new();
        endpoints[1].on_message(
            p(3),
            EchoMsg::Send {
                seq: SeqNo::new(1),
                payload: 666,
                sig: bad_sig,
            },
            &mut step,
        );
        assert!(step.outgoing.is_empty(), "no echo for a forged SEND");
        assert!(step.deliveries.is_empty());
    }

    #[test]
    fn fake_certificate_rejected() {
        let auth = EdAuth::deterministic(4, 2);
        let mut endpoint: EchoBroadcast<u64, EdAuth> = EchoBroadcast::new(p(1), 4, auth.clone());
        let seq = SeqNo::new(1);
        let payload = 5u64;
        let digest = payload_digest(&payload);
        let sig = auth.sign(p(0), &send_bytes(p(0), seq, digest));
        // Certificate signed by only one process (quorum is 3), padded
        // with duplicates.
        let share = auth.sign(p(2), &echo_bytes(p(0), seq, digest));
        let cert = vec![(p(2), share), (p(2), share), (p(2), share)];
        let mut step = Step::new();
        endpoint.on_message(
            p(0),
            EchoMsg::Final {
                source: p(0),
                seq,
                payload,
                sig,
                certificate: cert,
            },
            &mut step,
        );
        assert!(step.deliveries.is_empty(), "duplicate-signer cert rejected");
        assert_eq!(endpoint.delivered_count(), 0);
    }

    #[test]
    fn final_with_q_shares_meters_exactly_q_share_verifies() {
        // Satellite check for the at-obs accounting: a fresh endpoint
        // receiving a valid FINAL with a q-share certificate performs
        // exactly 1 sender-signature verify plus q per-share verifies,
        // and the ObservedAuth decorator routes every one of them into
        // the registry (counter and Stage::Verify histogram agree).
        let ed = EdAuth::deterministic(4, 9);
        let registry = at_obs::Registry::new("node 3");
        let auth = crate::auth::ObservedAuth::new(ed.clone(), registry.recorder());
        let mut endpoint: EchoBroadcast<u64, _> = EchoBroadcast::new(p(3), 4, auth.clone());
        let q = endpoint.quorum();
        assert_eq!(q, 3);

        let seq = SeqNo::new(1);
        let payload = 11u64;
        let digest = payload_digest(&payload);
        let sig = ed.sign(p(0), &send_bytes(p(0), seq, digest));
        let certificate: Vec<(ProcessId, _)> = (0..q as u32)
            .map(|i| (p(i), ed.sign(p(i), &echo_bytes(p(0), seq, digest))))
            .collect();

        let before = auth.verifies();
        let mut step = Step::new();
        endpoint.on_message(
            p(0),
            EchoMsg::Final {
                source: p(0),
                seq,
                payload,
                sig,
                certificate,
            },
            &mut step,
        );
        assert_eq!(step.deliveries.len(), 1, "valid certificate delivers");
        let per_share = auth.verifies() - before - 1; // minus the sender-sig check
        assert_eq!(per_share, q as u64, "exactly q per-share verifies");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("auth_verifies_total"),
            Some(auth.verifies()),
            "counter matches the decorator's own tally"
        );
        let hist = snap.histogram("stage_verify_us").expect("registered");
        assert_eq!(
            hist.count,
            auth.verifies(),
            "one histogram sample per verify"
        );
    }

    #[test]
    fn equivocating_sender_cannot_get_two_certificates() {
        // A Byzantine sender sends payload 1 to half the processes and
        // payload 2 to the other half. Quorum is ⌈(4+1+1)/2⌉ = 3 > 2, so
        // neither digest can collect a certificate.
        let auth = EdAuth::deterministic(4, 3);
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, EdAuth>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, auth.clone()))
            .collect();
        let seq = SeqNo::new(1);
        let mut echoes = Vec::new();
        for (to, value) in [(p(1), 1u64), (p(2), 1), (p(3), 2)] {
            let digest = payload_digest(&value);
            let sig = auth.sign(p(0), &send_bytes(p(0), seq, digest));
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(
                p(0),
                EchoMsg::Send {
                    seq,
                    payload: value,
                    sig,
                },
                &mut step,
            );
            echoes.extend(step.outgoing);
        }
        // 2 echoes for digest(1), 1 echo for digest(2): no quorum either
        // way, regardless of how the adversary combines the shares.
        assert_eq!(echoes.len(), 3);
        let digest1 = payload_digest(&1u64);
        let count1 = echoes
            .iter()
            .filter(|out| matches!(&out.msg, EchoMsg::Echo { digest, .. } if *digest == digest1))
            .count();
        assert_eq!(count1, 2);
        assert!(count1 < 3, "below quorum");
    }

    #[test]
    fn final_forwarding_gives_totality() {
        // The sender "selectively" finalizes: its FINAL reaches only p1.
        // With forwarding on, p1's re-broadcast completes delivery at
        // everyone.
        let delivered = run_system(
            4,
            |_| NoAuth,
            vec![(p(0), 8)],
            |from, to, msg| matches!(msg, EchoMsg::Final { .. }) && from == p(0) && to != p(1),
        );
        for (i, deliveries) in delivered.iter().enumerate() {
            assert_eq!(deliveries.len(), 1, "process {i}");
        }
    }

    #[test]
    fn without_forwarding_selective_final_splits_delivery() {
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, NoAuth>> = (0..n)
            .map(|i| {
                let mut endpoint = EchoBroadcast::new(p(i as u32), n, NoAuth);
                endpoint.set_forward_final(false);
                endpoint
            })
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, EchoMsg<u64, ()>)> = VecDeque::new();
        let mut step = Step::new();
        endpoints[0].broadcast(3, &mut step);
        for out in step.outgoing {
            inflight.push_back((p(0), out.to, out.msg));
        }
        let mut delivered = vec![0usize; n];
        while let Some((from, to, msg)) = inflight.pop_front() {
            if matches!(msg, EchoMsg::Final { .. }) && from == p(0) && to != p(1) {
                continue;
            }
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()] += step.deliveries.len();
        }
        assert_eq!(delivered, vec![0, 1, 0, 0]);
    }

    #[test]
    fn split_shadow_collects_but_never_finalizes_at_correct_quorum() {
        // Echoes for both sides of a split reach the attacker; with the
        // correct quorum neither side certifies, so no FINAL leaves.
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, NoAuth>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, NoAuth))
            .collect();
        let mut step = Step::new();
        endpoints[0].broadcast_split(1, 2, &mut step);
        let mut finals = 0;
        for out in step.outgoing {
            let mut reply = Step::new();
            let from = p(0);
            endpoints[out.to.as_usize()].on_message(from, out.msg, &mut reply);
            // Feed every echo straight back to the attacker.
            for echo in reply.outgoing {
                assert_eq!(echo.to, p(0));
                let mut reaction = Step::new();
                endpoints[0].on_message(out.to, echo.msg, &mut reaction);
                finals += reaction.outgoing.len();
            }
        }
        assert_eq!(finals, 0, "a split side certified at the correct quorum");
    }

    #[cfg(feature = "broken")]
    #[test]
    fn broken_quorum_lets_a_split_certify_both_sides() {
        // With the quorum forced one below the intersection threshold,
        // the attacker assembles certificates for BOTH split payloads —
        // the seeded safety bug the schedule explorer must catch.
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, NoAuth>> = (0..n)
            .map(|i| {
                let mut endpoint = EchoBroadcast::new(p(i as u32), n, NoAuth);
                endpoint.set_quorum_override(2);
                endpoint
            })
            .collect();
        assert_eq!(endpoints[0].quorum(), 2);
        let mut step = Step::new();
        endpoints[0].broadcast_split(1, 2, &mut step);
        let mut final_payloads = std::collections::BTreeSet::new();
        for out in step.outgoing {
            let mut reply = Step::new();
            endpoints[out.to.as_usize()].on_message(p(0), out.msg, &mut reply);
            for echo in reply.outgoing {
                let mut reaction = Step::new();
                endpoints[0].on_message(out.to, echo.msg, &mut reaction);
                for fin in reaction.outgoing {
                    if let EchoMsg::Final { payload, .. } = fin.msg {
                        final_payloads.insert(payload);
                    }
                }
            }
        }
        assert_eq!(
            final_payloads.into_iter().collect::<Vec<_>>(),
            vec![1, 2],
            "both sides must certify under the broken quorum"
        );
    }

    #[test]
    fn prune_drops_released_instances_and_suppresses_replays() {
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, NoAuth>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, NoAuth))
            .collect();
        let mut inflight: VecDeque<(ProcessId, ProcessId, EchoMsg<u64, ()>)> = VecDeque::new();
        let mut step = Step::new();
        endpoints[0].broadcast(42, &mut step);
        let mut replay_final = None;
        for out in step.outgoing {
            inflight.push_back((p(0), out.to, out.msg));
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            if replay_final.is_none() {
                if let EchoMsg::Final { .. } = &msg {
                    replay_final = Some(msg.clone());
                }
            }
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
        }
        for endpoint in &mut endpoints {
            assert_eq!(endpoint.instance_count(), 1);
            assert_eq!(endpoint.delivered_count(), 1);
            let pruned = endpoint.prune_delivered();
            assert_eq!(pruned, 1);
            assert_eq!(endpoint.instance_count(), 0);
            assert_eq!(endpoint.delivered_count(), 1, "monotone across pruning");
        }
        // A replayed FINAL for the pruned instance must not re-deliver
        // (the dedup map entry is gone; the release floor takes over).
        let replay = replay_final.expect("a FINAL circulated");
        let mut step = Step::new();
        endpoints[2].on_message(p(0), replay, &mut step);
        assert!(step.deliveries.is_empty(), "pruned instance re-delivered");
        assert_eq!(endpoints[2].delivered_count(), 1);
    }

    #[test]
    fn delivery_floor_resumes_a_stream_mid_sequence() {
        let n = 4;
        let mut endpoints: Vec<EchoBroadcast<u64, NoAuth>> = (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, NoAuth))
            .collect();
        // Endpoint 0 cold-starts knowing p1 delivered through seq 5 and
        // its own stream reached seq 3.
        endpoints[0].set_delivery_floor(p(1), SeqNo::new(5));
        endpoints[0].set_delivery_floor(p(0), SeqNo::new(3));
        let mut step = Step::new();
        let seq = endpoints[0].broadcast(7, &mut step);
        assert_eq!(seq, SeqNo::new(4), "own stream resumes after the floor");
        // Stale and fresh FINALs from p1 (NoAuth, so certificates are
        // trivially valid — quorum of distinct signers suffices).
        let mut delivered = Vec::new();
        for inst in [5u64, 6] {
            let certificate = vec![(p(1), ()), (p(2), ()), (p(3), ())];
            let mut step = Step::new();
            endpoints[0].on_message(
                p(1),
                EchoMsg::Final {
                    source: p(1),
                    seq: SeqNo::new(inst),
                    payload: inst,
                    sig: (),
                    certificate,
                },
                &mut step,
            );
            delivered.extend(step.deliveries);
        }
        assert_eq!(delivered.len(), 1, "only the post-floor instance lands");
        assert_eq!(delivered[0].seq, SeqNo::new(6));
        assert_eq!(delivered[0].payload, 6);
    }

    #[test]
    fn quorum_formula() {
        let endpoint: EchoBroadcast<u64, NoAuth> = EchoBroadcast::new(p(0), 4, NoAuth);
        assert_eq!(endpoint.quorum(), 3);
        let endpoint: EchoBroadcast<u64, NoAuth> = EchoBroadcast::new(p(0), 10, NoAuth);
        assert_eq!(endpoint.quorum(), 7);
        assert!(format!("{endpoint:?}").contains("n=10"));
    }
}
