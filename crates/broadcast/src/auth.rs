//! Message authentication for broadcast protocols.
//!
//! The paper assumes every process signs its messages (Section 5.2). In
//! the simulator two realisations are useful:
//!
//! * [`EdAuth`] — real Ed25519 signatures from [`at_crypto`]; used in the
//!   Byzantine tests, where forged or tampered messages must actually be
//!   rejected by cryptography;
//! * [`NoAuth`] — the authenticated-channels model: the simulator already
//!   conveys the true sender identity, so signatures are modelled as a
//!   per-event processing cost rather than computed. Used by the
//!   throughput/latency experiments, whose results depend on message and
//!   round complexity, not on cycles spent in field arithmetic.
//!
//! A third realisation, [`ObservedAuth`], wraps either of the above and
//! feeds per-operation counts and latencies into an [`at_obs`] registry
//! — the runtime's window into where signature CPU actually goes.

use at_crypto::{KeyStore, PrecomputedKey, Signature};
use at_model::ProcessId;
use at_obs::{Counter, Recorder, Stage};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One signature of a batch verification: `signer` claims `sig` over
/// `bytes`.
#[derive(Clone, Copy, Debug)]
pub struct BatchVerifyItem<'a, S> {
    /// The claimed signer.
    pub signer: ProcessId,
    /// The signed bytes.
    pub bytes: &'a [u8],
    /// The signature to check.
    pub sig: &'a S,
}

/// A pluggable signing scheme.
pub trait Authenticator: Clone + Send {
    /// The signature type.
    type Sig: Clone + PartialEq + fmt::Debug + Send;

    /// Signs `bytes` as process `signer`.
    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Self::Sig;

    /// Verifies a signature by `signer` over `bytes`.
    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Self::Sig) -> bool;

    /// Verifies many signatures at once, returning the (ascending)
    /// indices of the items that fail. Agrees item-for-item with
    /// [`Authenticator::verify`]; implementations with a cheaper
    /// combined check (see [`EdAuth`]) override this and fall back to
    /// per-item verification only to attribute failures.
    ///
    /// # Errors
    ///
    /// Returns the indices of the invalid items.
    fn verify_batch(&self, items: &[BatchVerifyItem<'_, Self::Sig>]) -> Result<(), Vec<usize>> {
        let bad: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, item)| !self.verify(item.signer, item.bytes, item.sig))
            .map(|(index, _)| index)
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }
}

/// Real Ed25519 authentication over a shared (simulation-wide, test-only)
/// key store. Each signer's public key gets a lazily-built precomputed
/// multiplication table ([`at_crypto::PrecomputedKey`]), shared across
/// clones, so steady-state verification — and above all
/// [`Authenticator::verify_batch`], which checks a whole certificate in
/// one random-linear-combination equation — runs several times faster
/// than naive per-signature arithmetic.
#[derive(Clone)]
pub struct EdAuth {
    keys: Arc<KeyStore>,
    precomputed: Arc<Vec<OnceLock<PrecomputedKey>>>,
}

impl EdAuth {
    /// Creates the authenticator over a key store.
    pub fn new(keys: Arc<KeyStore>) -> Self {
        let precomputed = Arc::new((0..keys.len()).map(|_| OnceLock::new()).collect());
        EdAuth { keys, precomputed }
    }

    /// Convenience: a deterministic key store for `n` processes.
    pub fn deterministic(n: usize, seed: u64) -> Self {
        EdAuth::new(Arc::new(KeyStore::deterministic(n, seed)))
    }

    /// The precomputed key of `signer`, built on first use.
    fn precomputed(&self, signer: ProcessId) -> &PrecomputedKey {
        self.precomputed[signer.as_usize()]
            .get_or_init(|| PrecomputedKey::new(*self.keys.public(signer)))
    }

    /// Builds every signer's comb table (and the shared base-point
    /// table) eagerly. The tables are otherwise built lazily on first
    /// use, which is right for tests but lands the one-time ~ms
    /// precomputation inside the first metered sign/verify span of a
    /// benchmark run — call this at startup when that matters.
    pub fn warm(&self) {
        at_crypto::edwards::basepoint_table();
        for index in 0..self.keys.len() {
            self.precomputed(ProcessId::new(index as u32));
        }
    }
}

impl Authenticator for EdAuth {
    type Sig = Signature;

    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Signature {
        self.keys.keypair(signer).sign(bytes)
    }

    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Signature) -> bool {
        self.precomputed(signer).verify(bytes, sig).is_ok()
    }

    fn verify_batch(&self, items: &[BatchVerifyItem<'_, Signature>]) -> Result<(), Vec<usize>> {
        let batch: Vec<(&PrecomputedKey, &[u8], &Signature)> = items
            .iter()
            .map(|item| (self.precomputed(item.signer), item.bytes, item.sig))
            .collect();
        at_crypto::verify_batch(&batch)
    }
}

impl fmt::Debug for EdAuth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdAuth({} keys)", self.keys.len())
    }
}

/// The authenticated-channels model: signatures carry no information and
/// always verify *for the claimed signer the simulator actually routed
/// from*. A forging adversary is out of scope for this authenticator by
/// construction — use [`EdAuth`] in adversarial tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAuth;

impl Authenticator for NoAuth {
    type Sig = ();

    fn sign(&self, _signer: ProcessId, _bytes: &[u8]) {}

    fn verify(&self, _signer: ProcessId, _bytes: &[u8], _sig: &()) -> bool {
        true
    }

    fn verify_batch(&self, _items: &[BatchVerifyItem<'_, ()>]) -> Result<(), Vec<usize>> {
        Ok(())
    }
}

/// An [`Authenticator`] decorator that meters the one it wraps: every
/// `sign`/`verify` bumps `auth_signs_total`/`auth_verifies_total` and
/// records its wall-clock latency into the [`Stage::Sign`] /
/// [`Stage::Verify`] histograms of the recorder's registry. Handles are
/// pre-resolved at construction, so the per-operation overhead is two
/// relaxed atomics and a clock read.
#[derive(Clone)]
pub struct ObservedAuth<A: Authenticator> {
    inner: A,
    recorder: Recorder,
    signs: Arc<Counter>,
    verifies: Arc<Counter>,
}

impl<A: Authenticator> ObservedAuth<A> {
    /// Wraps `inner`, metering into `recorder`'s registry.
    pub fn new(inner: A, recorder: Recorder) -> Self {
        let registry = recorder.registry();
        ObservedAuth {
            inner,
            signs: registry.counter("auth_signs_total"),
            verifies: registry.counter("auth_verifies_total"),
            recorder,
        }
    }

    /// The wrapped authenticator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Signing operations metered so far.
    pub fn signs(&self) -> u64 {
        self.signs.get()
    }

    /// Verification operations metered so far.
    pub fn verifies(&self) -> u64 {
        self.verifies.get()
    }
}

impl<A: Authenticator> Authenticator for ObservedAuth<A> {
    type Sig = A::Sig;

    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Self::Sig {
        let started = Instant::now();
        let sig = self.inner.sign(signer, bytes);
        self.recorder.record(Stage::Sign, started.elapsed());
        self.signs.inc();
        sig
    }

    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Self::Sig) -> bool {
        let started = Instant::now();
        let ok = self.inner.verify(signer, bytes, sig);
        self.recorder.record(Stage::Verify, started.elapsed());
        self.verifies.inc();
        ok
    }

    fn verify_batch(&self, items: &[BatchVerifyItem<'_, Self::Sig>]) -> Result<(), Vec<usize>> {
        if items.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let result = self.inner.verify_batch(items);
        // One batched pass checked `items.len()` signatures: meter it as
        // that many verifies, each at the amortized per-signature cost,
        // so counters stay per-signature and the Stage::Verify histogram
        // shows the batching win directly.
        let amortized = started.elapsed() / items.len() as u32;
        for _ in 0..items.len() {
            self.recorder.record(Stage::Verify, amortized);
        }
        self.verifies.add(items.len() as u64);
        result
    }
}

impl<A: Authenticator> fmt::Debug for ObservedAuth<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObservedAuth(signs={}, verifies={})",
            self.signs.get(),
            self.verifies.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed_auth_signs_and_verifies() {
        let auth = EdAuth::deterministic(3, 1);
        let signer = ProcessId::new(2);
        let sig = auth.sign(signer, b"hello");
        assert!(auth.verify(signer, b"hello", &sig));
        assert!(!auth.verify(signer, b"other", &sig));
        assert!(!auth.verify(ProcessId::new(0), b"hello", &sig));
    }

    #[test]
    fn ed_auth_debug() {
        let auth = EdAuth::deterministic(2, 0);
        assert_eq!(format!("{auth:?}"), "EdAuth(2 keys)");
    }

    #[test]
    fn no_auth_accepts_everything() {
        let auth = NoAuth;
        auth.sign(ProcessId::new(0), b"x");
        assert!(auth.verify(ProcessId::new(1), b"y", &()));
        assert_eq!(auth.verify_batch(&[]), Ok(()));
    }

    #[test]
    fn ed_auth_batch_agrees_with_serial_and_attributes_failures() {
        let auth = EdAuth::deterministic(4, 5);
        let messages: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let sigs: Vec<Signature> = (0..4)
            .map(|i| auth.sign(ProcessId::new(i as u32), &messages[i]))
            .collect();
        let items: Vec<BatchVerifyItem<'_, Signature>> = (0..4)
            .map(|i| BatchVerifyItem {
                signer: ProcessId::new(i as u32),
                bytes: messages[i].as_slice(),
                sig: &sigs[i],
            })
            .collect();
        assert_eq!(auth.verify_batch(&items), Ok(()));
        // Swap one signer: only that index is attributed.
        let mut tampered = items.clone();
        tampered[2].signer = ProcessId::new(0);
        assert_eq!(auth.verify_batch(&tampered), Err(vec![2]));
        for (i, item) in tampered.iter().enumerate() {
            assert_eq!(
                auth.verify(item.signer, item.bytes, item.sig),
                i != 2,
                "serial verify must agree at index {i}"
            );
        }
    }

    #[test]
    fn observed_auth_meters_batches_per_signature() {
        let ed = EdAuth::deterministic(3, 11);
        let registry = at_obs::Registry::new("test");
        let auth = ObservedAuth::new(ed.clone(), registry.recorder());
        let messages: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        let sigs: Vec<Signature> = (0..3)
            .map(|i| ed.sign(ProcessId::new(i as u32), &messages[i]))
            .collect();
        let items: Vec<BatchVerifyItem<'_, Signature>> = (0..3)
            .map(|i| BatchVerifyItem {
                signer: ProcessId::new(i as u32),
                bytes: messages[i].as_slice(),
                sig: &sigs[i],
            })
            .collect();
        assert_eq!(auth.verify_batch(&items), Ok(()));
        assert_eq!(auth.verifies(), 3, "batch counts per signature");
        let snap = registry.snapshot();
        let hist = snap.histogram("stage_verify_us").expect("registered");
        assert_eq!(hist.count, 3, "one histogram sample per batched verify");
        assert_eq!(auth.verify_batch(&[]), Ok(()));
        assert_eq!(auth.verifies(), 3, "empty batch meters nothing");
    }
}
