//! Message authentication for broadcast protocols.
//!
//! The paper assumes every process signs its messages (Section 5.2). In
//! the simulator two realisations are useful:
//!
//! * [`EdAuth`] — real Ed25519 signatures from [`at_crypto`]; used in the
//!   Byzantine tests, where forged or tampered messages must actually be
//!   rejected by cryptography;
//! * [`NoAuth`] — the authenticated-channels model: the simulator already
//!   conveys the true sender identity, so signatures are modelled as a
//!   per-event processing cost rather than computed. Used by the
//!   throughput/latency experiments, whose results depend on message and
//!   round complexity, not on cycles spent in field arithmetic.

use at_crypto::{KeyStore, Signature};
use at_model::ProcessId;
use std::fmt;
use std::sync::Arc;

/// A pluggable signing scheme.
pub trait Authenticator: Clone + Send {
    /// The signature type.
    type Sig: Clone + PartialEq + fmt::Debug + Send;

    /// Signs `bytes` as process `signer`.
    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Self::Sig;

    /// Verifies a signature by `signer` over `bytes`.
    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Self::Sig) -> bool;
}

/// Real Ed25519 authentication over a shared (simulation-wide, test-only)
/// key store.
#[derive(Clone)]
pub struct EdAuth {
    keys: Arc<KeyStore>,
}

impl EdAuth {
    /// Creates the authenticator over a key store.
    pub fn new(keys: Arc<KeyStore>) -> Self {
        EdAuth { keys }
    }

    /// Convenience: a deterministic key store for `n` processes.
    pub fn deterministic(n: usize, seed: u64) -> Self {
        EdAuth::new(Arc::new(KeyStore::deterministic(n, seed)))
    }
}

impl Authenticator for EdAuth {
    type Sig = Signature;

    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Signature {
        self.keys.keypair(signer).sign(bytes)
    }

    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Signature) -> bool {
        self.keys.public(signer).verify(bytes, sig).is_ok()
    }
}

impl fmt::Debug for EdAuth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdAuth({} keys)", self.keys.len())
    }
}

/// The authenticated-channels model: signatures carry no information and
/// always verify *for the claimed signer the simulator actually routed
/// from*. A forging adversary is out of scope for this authenticator by
/// construction — use [`EdAuth`] in adversarial tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAuth;

impl Authenticator for NoAuth {
    type Sig = ();

    fn sign(&self, _signer: ProcessId, _bytes: &[u8]) {}

    fn verify(&self, _signer: ProcessId, _bytes: &[u8], _sig: &()) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed_auth_signs_and_verifies() {
        let auth = EdAuth::deterministic(3, 1);
        let signer = ProcessId::new(2);
        let sig = auth.sign(signer, b"hello");
        assert!(auth.verify(signer, b"hello", &sig));
        assert!(!auth.verify(signer, b"other", &sig));
        assert!(!auth.verify(ProcessId::new(0), b"hello", &sig));
    }

    #[test]
    fn ed_auth_debug() {
        let auth = EdAuth::deterministic(2, 0);
        assert_eq!(format!("{auth:?}"), "EdAuth(2 keys)");
    }

    #[test]
    fn no_auth_accepts_everything() {
        let auth = NoAuth;
        auth.sign(ProcessId::new(0), b"x");
        assert!(auth.verify(ProcessId::new(1), b"y", &()));
    }
}
