//! Message authentication for broadcast protocols.
//!
//! The paper assumes every process signs its messages (Section 5.2). In
//! the simulator two realisations are useful:
//!
//! * [`EdAuth`] — real Ed25519 signatures from [`at_crypto`]; used in the
//!   Byzantine tests, where forged or tampered messages must actually be
//!   rejected by cryptography;
//! * [`NoAuth`] — the authenticated-channels model: the simulator already
//!   conveys the true sender identity, so signatures are modelled as a
//!   per-event processing cost rather than computed. Used by the
//!   throughput/latency experiments, whose results depend on message and
//!   round complexity, not on cycles spent in field arithmetic.
//!
//! A third realisation, [`ObservedAuth`], wraps either of the above and
//! feeds per-operation counts and latencies into an [`at_obs`] registry
//! — the runtime's window into where signature CPU actually goes.

use at_crypto::{KeyStore, Signature};
use at_model::ProcessId;
use at_obs::{Counter, Recorder, Stage};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A pluggable signing scheme.
pub trait Authenticator: Clone + Send {
    /// The signature type.
    type Sig: Clone + PartialEq + fmt::Debug + Send;

    /// Signs `bytes` as process `signer`.
    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Self::Sig;

    /// Verifies a signature by `signer` over `bytes`.
    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Self::Sig) -> bool;
}

/// Real Ed25519 authentication over a shared (simulation-wide, test-only)
/// key store.
#[derive(Clone)]
pub struct EdAuth {
    keys: Arc<KeyStore>,
}

impl EdAuth {
    /// Creates the authenticator over a key store.
    pub fn new(keys: Arc<KeyStore>) -> Self {
        EdAuth { keys }
    }

    /// Convenience: a deterministic key store for `n` processes.
    pub fn deterministic(n: usize, seed: u64) -> Self {
        EdAuth::new(Arc::new(KeyStore::deterministic(n, seed)))
    }
}

impl Authenticator for EdAuth {
    type Sig = Signature;

    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Signature {
        self.keys.keypair(signer).sign(bytes)
    }

    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Signature) -> bool {
        self.keys.public(signer).verify(bytes, sig).is_ok()
    }
}

impl fmt::Debug for EdAuth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EdAuth({} keys)", self.keys.len())
    }
}

/// The authenticated-channels model: signatures carry no information and
/// always verify *for the claimed signer the simulator actually routed
/// from*. A forging adversary is out of scope for this authenticator by
/// construction — use [`EdAuth`] in adversarial tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAuth;

impl Authenticator for NoAuth {
    type Sig = ();

    fn sign(&self, _signer: ProcessId, _bytes: &[u8]) {}

    fn verify(&self, _signer: ProcessId, _bytes: &[u8], _sig: &()) -> bool {
        true
    }
}

/// An [`Authenticator`] decorator that meters the one it wraps: every
/// `sign`/`verify` bumps `auth_signs_total`/`auth_verifies_total` and
/// records its wall-clock latency into the [`Stage::Sign`] /
/// [`Stage::Verify`] histograms of the recorder's registry. Handles are
/// pre-resolved at construction, so the per-operation overhead is two
/// relaxed atomics and a clock read.
#[derive(Clone)]
pub struct ObservedAuth<A: Authenticator> {
    inner: A,
    recorder: Recorder,
    signs: Arc<Counter>,
    verifies: Arc<Counter>,
}

impl<A: Authenticator> ObservedAuth<A> {
    /// Wraps `inner`, metering into `recorder`'s registry.
    pub fn new(inner: A, recorder: Recorder) -> Self {
        let registry = recorder.registry();
        ObservedAuth {
            inner,
            signs: registry.counter("auth_signs_total"),
            verifies: registry.counter("auth_verifies_total"),
            recorder,
        }
    }

    /// The wrapped authenticator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Signing operations metered so far.
    pub fn signs(&self) -> u64 {
        self.signs.get()
    }

    /// Verification operations metered so far.
    pub fn verifies(&self) -> u64 {
        self.verifies.get()
    }
}

impl<A: Authenticator> Authenticator for ObservedAuth<A> {
    type Sig = A::Sig;

    fn sign(&self, signer: ProcessId, bytes: &[u8]) -> Self::Sig {
        let started = Instant::now();
        let sig = self.inner.sign(signer, bytes);
        self.recorder.record(Stage::Sign, started.elapsed());
        self.signs.inc();
        sig
    }

    fn verify(&self, signer: ProcessId, bytes: &[u8], sig: &Self::Sig) -> bool {
        let started = Instant::now();
        let ok = self.inner.verify(signer, bytes, sig);
        self.recorder.record(Stage::Verify, started.elapsed());
        self.verifies.inc();
        ok
    }
}

impl<A: Authenticator> fmt::Debug for ObservedAuth<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ObservedAuth(signs={}, verifies={})",
            self.signs.get(),
            self.verifies.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed_auth_signs_and_verifies() {
        let auth = EdAuth::deterministic(3, 1);
        let signer = ProcessId::new(2);
        let sig = auth.sign(signer, b"hello");
        assert!(auth.verify(signer, b"hello", &sig));
        assert!(!auth.verify(signer, b"other", &sig));
        assert!(!auth.verify(ProcessId::new(0), b"hello", &sig));
    }

    #[test]
    fn ed_auth_debug() {
        let auth = EdAuth::deterministic(2, 0);
        assert_eq!(format!("{auth:?}"), "EdAuth(2 keys)");
    }

    #[test]
    fn no_auth_accepts_everything() {
        let auth = NoAuth;
        auth.sign(ProcessId::new(0), b"x");
        assert!(auth.verify(ProcessId::new(1), b"y", &()));
    }
}
