//! Common broadcast-layer types.

use at_model::{ProcessId, SeqNo};
use std::collections::BTreeMap;
use std::fmt;

/// A message to hand to the network, addressed to one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The destination process.
    pub to: ProcessId,
    /// The message.
    pub msg: M,
}

/// A payload delivered by a broadcast primitive, attributed to its source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<P> {
    /// The originating (broadcasting) process.
    pub source: ProcessId,
    /// The source's sequence number for this broadcast.
    pub seq: SeqNo,
    /// The delivered payload.
    pub payload: P,
}

/// Sink collecting the outputs of one broadcast-layer step: messages to
/// send and payloads to deliver to the application.
#[derive(Debug)]
pub struct Step<M, P> {
    /// Messages to transmit.
    pub outgoing: Vec<Outgoing<M>>,
    /// Payloads delivered (in delivery order).
    pub deliveries: Vec<Delivery<P>>,
}

impl<M, P> Default for Step<M, P> {
    fn default() -> Self {
        Step {
            outgoing: Vec::new(),
            deliveries: Vec::new(),
        }
    }
}

impl<M, P> Step<M, P> {
    /// An empty step.
    pub fn new() -> Self {
        Step::default()
    }

    /// Queues `msg` for `to`.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outgoing.push(Outgoing { to, msg });
    }

    /// Queues `msg` for every process in a system of size `n` (including
    /// the local process, per the broadcast convention).
    pub fn send_all(&mut self, n: usize, msg: M)
    where
        M: Clone,
    {
        for i in 0..n {
            self.outgoing.push(Outgoing {
                to: ProcessId::new(i as u32),
                msg: msg.clone(),
            });
        }
    }

    /// Queues a delivery.
    pub fn deliver(&mut self, source: ProcessId, seq: SeqNo, payload: P) {
        self.deliveries.push(Delivery {
            source,
            seq,
            payload,
        });
    }
}

/// Cumulative signature-operation counters of a broadcast endpoint.
///
/// Signature-free protocols (Bracha) report zeros; the signed protocols
/// count every `sign`/`verify` their state machine performs, including
/// per-share certificate checks. The engine layer uses the counters to
/// charge modelled signature CPU ([`at_net::Context::charge`]-style) in
/// virtual time, making the paper's "signatures vs message complexity"
/// trade-off measurable without real cryptography on the hot path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoOps {
    /// Signatures produced.
    pub signs: u64,
    /// Signature verifications performed.
    pub verifies: u64,
}

impl CryptoOps {
    /// Total signature operations (signs + verifies).
    pub fn total(&self) -> u64 {
        self.signs + self.verifies
    }
}

/// Per-source FIFO delivery buffer: releases `(source, seq)` payloads in
/// sequence order per source, realising the *source order* property of
/// Section 5.2 (strengthened to FIFO, which the paper notes is what the
/// per-process sequence numbers provide).
pub struct SourceOrderBuffer<P> {
    pending: BTreeMap<ProcessId, BTreeMap<u64, P>>,
    next: BTreeMap<ProcessId, u64>,
}

impl<P> Default for SourceOrderBuffer<P> {
    fn default() -> Self {
        SourceOrderBuffer {
            pending: BTreeMap::new(),
            next: BTreeMap::new(),
        }
    }
}

impl<P> SourceOrderBuffer<P> {
    /// Creates an empty buffer; the first expected sequence number per
    /// source is 1.
    pub fn new() -> Self {
        SourceOrderBuffer::default()
    }

    /// Offers a decoded broadcast; returns every payload that became
    /// releasable, in order. Offers at or below the released floor are
    /// discarded outright — a stale duplicate must not take up buffer
    /// space it can never leave.
    pub fn offer(&mut self, source: ProcessId, seq: SeqNo, payload: P) -> Vec<(SeqNo, P)> {
        let next = self.next.entry(source).or_insert(1);
        if seq.value() < *next {
            return Vec::new();
        }
        let slot = self.pending.entry(source).or_default();
        slot.entry(seq.value()).or_insert(payload);
        let next = self.next.entry(source).or_insert(1);
        let mut released = Vec::new();
        while let Some(payload) = slot.remove(next) {
            released.push((SeqNo::new(*next), payload));
            *next += 1;
        }
        released
    }

    /// Raises the release floor of `source` so the next expected
    /// sequence number is `floor + 1`, discarding any buffered payloads
    /// at or below the floor. Never lowers an already-higher floor.
    /// Cold-started endpoints use this to resume a source's stream from
    /// a snapshot frontier instead of sequence number 1.
    pub fn advance(&mut self, source: ProcessId, floor: SeqNo) {
        let next = self.next.entry(source).or_insert(1);
        if floor.value() + 1 > *next {
            *next = floor.value() + 1;
        }
        let floor = *next;
        if let Some(slot) = self.pending.get_mut(&source) {
            *slot = slot.split_off(&floor);
        }
    }

    /// The next sequence number expected from `source`.
    pub fn expected(&self, source: ProcessId) -> SeqNo {
        SeqNo::new(self.next.get(&source).copied().unwrap_or(1))
    }

    /// Number of buffered (gapped) payloads across all sources.
    pub fn buffered(&self) -> usize {
        self.pending.values().map(BTreeMap::len).sum()
    }
}

impl<P> fmt::Debug for SourceOrderBuffer<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceOrderBuffer(buffered={})", self.buffered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn s(v: u64) -> SeqNo {
        SeqNo::new(v)
    }

    #[test]
    fn in_order_offers_release_immediately() {
        let mut buffer = SourceOrderBuffer::new();
        assert_eq!(buffer.offer(p(0), s(1), "a"), vec![(s(1), "a")]);
        assert_eq!(buffer.offer(p(0), s(2), "b"), vec![(s(2), "b")]);
        assert_eq!(buffer.expected(p(0)), s(3));
    }

    #[test]
    fn gaps_hold_back_until_filled() {
        let mut buffer = SourceOrderBuffer::new();
        assert_eq!(buffer.offer(p(0), s(2), "b"), vec![]);
        assert_eq!(buffer.offer(p(0), s(3), "c"), vec![]);
        assert_eq!(buffer.buffered(), 2);
        let released = buffer.offer(p(0), s(1), "a");
        assert_eq!(released, vec![(s(1), "a"), (s(2), "b"), (s(3), "c")]);
        assert_eq!(buffer.buffered(), 0);
    }

    #[test]
    fn sources_are_independent() {
        let mut buffer = SourceOrderBuffer::new();
        assert_eq!(buffer.offer(p(1), s(1), "x"), vec![(s(1), "x")]);
        assert_eq!(buffer.offer(p(0), s(2), "b"), vec![]);
        assert_eq!(buffer.expected(p(0)), s(1));
        assert_eq!(buffer.expected(p(1)), s(2));
    }

    #[test]
    fn duplicate_offers_are_ignored() {
        let mut buffer = SourceOrderBuffer::new();
        assert_eq!(buffer.offer(p(0), s(1), "a"), vec![(s(1), "a")]);
        // Re-offering a released seq does nothing — and leaves no
        // residue behind (a stale duplicate below the floor used to be
        // parked in the pending map forever).
        assert_eq!(buffer.offer(p(0), s(1), "a'"), vec![]);
        assert_eq!(buffer.buffered(), 0);
        // Duplicate buffered offers keep the first payload.
        assert_eq!(buffer.offer(p(0), s(3), "c"), vec![]);
        assert_eq!(buffer.offer(p(0), s(3), "c'"), vec![]);
        let released = buffer.offer(p(0), s(2), "b");
        assert_eq!(released, vec![(s(2), "b"), (s(3), "c")]);
    }

    #[test]
    fn advance_skips_to_the_floor_and_drops_stale_buffers() {
        let mut buffer = SourceOrderBuffer::new();
        // Gapped payloads straddling the future floor.
        assert_eq!(buffer.offer(p(0), s(3), "c"), vec![]);
        assert_eq!(buffer.offer(p(0), s(6), "f"), vec![]);
        buffer.advance(p(0), s(4));
        assert_eq!(buffer.expected(p(0)), s(5));
        assert_eq!(buffer.buffered(), 1, "only seq 6 survives the floor");
        // Stale offers below the floor are discarded, in-order resumes.
        assert_eq!(buffer.offer(p(0), s(2), "b"), vec![]);
        assert_eq!(buffer.buffered(), 1);
        assert_eq!(
            buffer.offer(p(0), s(5), "e"),
            vec![(s(5), "e"), (s(6), "f")]
        );
        // Advancing backwards never lowers the floor.
        buffer.advance(p(0), s(1));
        assert_eq!(buffer.expected(p(0)), s(7));
    }

    #[test]
    fn step_sink_collects() {
        let mut step: Step<u8, &str> = Step::new();
        step.send(p(1), 7);
        step.send_all(2, 9);
        step.deliver(p(0), s(1), "payload");
        assert_eq!(step.outgoing.len(), 3);
        assert_eq!(step.deliveries.len(), 1);
        assert_eq!(step.deliveries[0].source, p(0));
    }

    #[test]
    fn debug_renders() {
        let buffer: SourceOrderBuffer<u8> = SourceOrderBuffer::new();
        assert!(format!("{buffer:?}").contains("buffered=0"));
    }
}
