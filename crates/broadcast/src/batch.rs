//! Batched broadcast payloads.
//!
//! The consensusless protocol pays one secure-broadcast instance per
//! payload; when a process issues many transfers, batching them into one
//! payload amortizes the per-instance message cost (`O(n²)` for Bracha,
//! `O(n)` for signed echo) across the whole batch. [`Batch`] is the wire
//! payload — an ordered sequence of inner payloads, encoded canonically so
//! it can be hashed and signed like any other payload — and [`Batcher`] is
//! the sender-side accumulator with a size cap.
//!
//! Batching preserves the broadcast's source-order property: inner
//! payloads are delivered in batch order, and batches in broadcast order,
//! so the concatenation of delivered batches from one source is exactly
//! the order in which that source enqueued payloads.

use at_model::codec::{Decode, Encode, Reader, Writer};
use at_model::CodecError;

/// An ordered batch of payloads, broadcast as a single unit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Batch<P> {
    /// The payloads, in submission order.
    pub items: Vec<P>,
}

impl<P> Batch<P> {
    /// A batch over `items`.
    pub fn new(items: Vec<P>) -> Self {
        Batch { items }
    }

    /// A batch holding a single payload.
    pub fn single(item: P) -> Self {
        Batch { items: vec![item] }
    }

    /// Number of payloads in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<P: Encode> Encode for Batch<P> {
    fn encode(&self, w: &mut Writer) {
        self.items.encode(w);
    }
}

impl<P: Decode> Decode for Batch<P> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Batch {
            items: Vec::<P>::decode(r)?,
        })
    }
}

/// Sender-side batch accumulator with a size cap.
///
/// Time-based flushing is the *caller's* concern (the engine replica arms
/// a flush timer); the batcher only enforces the size cap, returning a
/// full batch from [`Batcher::push`] the moment it fills.
#[derive(Clone, Debug)]
pub struct Batcher<P> {
    pending: Vec<P>,
    max_size: usize,
}

impl<P> Batcher<P> {
    /// A batcher emitting batches of at most `max_size` payloads.
    ///
    /// # Panics
    ///
    /// Panics when `max_size` is zero.
    pub fn new(max_size: usize) -> Self {
        assert!(max_size > 0, "batch size must be at least 1");
        Batcher {
            pending: Vec::new(),
            max_size,
        }
    }

    /// Enqueues `item`; returns the full batch when the cap is reached.
    pub fn push(&mut self, item: P) -> Option<Batch<P>> {
        self.pending.push(item);
        if self.pending.len() >= self.max_size {
            self.flush()
        } else {
            None
        }
    }

    /// Drains everything pending into a batch, or `None` when empty.
    pub fn flush(&mut self) -> Option<Batch<P>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Batch {
                items: std::mem::take(&mut self.pending),
            })
        }
    }

    /// Number of payloads waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The configured size cap.
    pub fn max_size(&self) -> usize {
        self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_model::codec::{decode, encode};

    #[test]
    fn batch_codec_roundtrips() {
        let batch = Batch::new(vec![1u32, 2, 3]);
        let bytes = encode(&batch);
        let back: Batch<u32> = decode(&bytes).unwrap();
        assert_eq!(batch, back);
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
        assert!(Batch::<u32>::new(vec![]).is_empty());
        assert_eq!(Batch::single(9u64).items, vec![9]);
    }

    #[test]
    fn batcher_flushes_at_cap() {
        let mut batcher = Batcher::new(3);
        assert_eq!(batcher.push(1), None);
        assert_eq!(batcher.push(2), None);
        assert_eq!(batcher.pending(), 2);
        let full = batcher.push(3).expect("cap reached");
        assert_eq!(full.items, vec![1, 2, 3]);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn batcher_manual_flush() {
        let mut batcher = Batcher::new(8);
        assert!(batcher.flush().is_none());
        batcher.push(7);
        assert_eq!(batcher.flush().unwrap().items, vec![7]);
        assert!(batcher.flush().is_none());
        assert_eq!(batcher.max_size(), 8);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_cap_rejected() {
        let _ = Batcher::<u8>::new(0);
    }
}
