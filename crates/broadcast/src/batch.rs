//! Batched broadcast payloads.
//!
//! The consensusless protocol pays one secure-broadcast instance per
//! payload; when a process issues many transfers, batching them into one
//! payload amortizes the per-instance message cost (`O(n²)` for Bracha,
//! `O(n)` for signed echo) across the whole batch. [`Batch`] is the wire
//! payload — an ordered sequence of inner payloads, encoded canonically so
//! it can be hashed and signed like any other payload — and [`Batcher`] is
//! the sender-side accumulator with a size cap.
//!
//! Batching preserves the broadcast's source-order property: inner
//! payloads are delivered in batch order, and batches in broadcast order,
//! so the concatenation of delivered batches from one source is exactly
//! the order in which that source enqueued payloads.

use at_model::codec::{Decode, Encode, Reader, Writer};
use at_model::CodecError;
use at_obs::TraceCtx;

/// An ordered batch of payloads, broadcast as a single unit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Batch<P> {
    /// The payloads, in submission order.
    pub items: Vec<P>,
    /// The causal trace context riding the batch, when any member
    /// transfer was sampled at its gateway (the first traced member
    /// wins; see [`Batcher::attach_trace`]). Encoded canonically like
    /// every other field, so a traced batch hashes and signs
    /// deterministically too.
    pub trace: Option<TraceCtx>,
}

impl<P> Batch<P> {
    /// An untraced batch over `items`.
    pub fn new(items: Vec<P>) -> Self {
        Batch { items, trace: None }
    }

    /// An untraced batch holding a single payload.
    pub fn single(item: P) -> Self {
        Batch {
            items: vec![item],
            trace: None,
        }
    }

    /// The same batch carrying `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Option<TraceCtx>) -> Self {
        self.trace = trace;
        self
    }

    /// Number of payloads in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<P: Encode> Encode for Batch<P> {
    fn encode(&self, w: &mut Writer) {
        self.items.encode(w);
        self.trace.encode(w);
    }
}

impl<P: Decode> Decode for Batch<P> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Batch {
            items: Vec::<P>::decode(r)?,
            trace: Option::<TraceCtx>::decode(r)?,
        })
    }
}

/// Sender-side batch accumulator with a size cap.
///
/// Time-based flushing is the *caller's* concern (the engine replica arms
/// a flush timer); the batcher only enforces the size cap, returning a
/// full batch from [`Batcher::push`] the moment it fills.
#[derive(Clone, Debug)]
pub struct Batcher<P> {
    pending: Vec<P>,
    max_size: usize,
    trace: Option<TraceCtx>,
}

impl<P> Batcher<P> {
    /// A batcher emitting batches of at most `max_size` payloads.
    ///
    /// # Panics
    ///
    /// Panics when `max_size` is zero.
    pub fn new(max_size: usize) -> Self {
        assert!(max_size > 0, "batch size must be at least 1");
        Batcher {
            pending: Vec::new(),
            max_size,
            trace: None,
        }
    }

    /// Enqueues `item`; returns the full batch when the cap is reached.
    pub fn push(&mut self, item: P) -> Option<Batch<P>> {
        self.pending.push(item);
        if self.pending.len() >= self.max_size {
            self.flush()
        } else {
            None
        }
    }

    /// Attaches a trace context to the batch currently accumulating.
    /// The first traced member claims the batch; returns `false` when
    /// the batch was already claimed (the caller records that join
    /// against the existing context instead).
    pub fn attach_trace(&mut self, ctx: TraceCtx) -> bool {
        if self.trace.is_none() {
            self.trace = Some(ctx);
            true
        } else {
            false
        }
    }

    /// The trace context the accumulating batch will carry.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// Drains everything pending into a batch, or `None` when empty.
    pub fn flush(&mut self) -> Option<Batch<P>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(Batch {
                items: std::mem::take(&mut self.pending),
                trace: self.trace.take(),
            })
        }
    }

    /// Number of payloads waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The configured size cap.
    pub fn max_size(&self) -> usize {
        self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_model::codec::{decode, encode};

    #[test]
    fn batch_codec_roundtrips() {
        let batch = Batch::new(vec![1u32, 2, 3]);
        let bytes = encode(&batch);
        let back: Batch<u32> = decode(&bytes).unwrap();
        assert_eq!(batch, back);
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
        assert!(Batch::<u32>::new(vec![]).is_empty());
        assert_eq!(Batch::single(9u64).items, vec![9]);
    }

    #[test]
    fn batcher_flushes_at_cap() {
        let mut batcher = Batcher::new(3);
        assert_eq!(batcher.push(1), None);
        assert_eq!(batcher.push(2), None);
        assert_eq!(batcher.pending(), 2);
        let full = batcher.push(3).expect("cap reached");
        assert_eq!(full.items, vec![1, 2, 3]);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn batcher_manual_flush() {
        let mut batcher = Batcher::new(8);
        assert!(batcher.flush().is_none());
        batcher.push(7);
        assert_eq!(batcher.flush().unwrap().items, vec![7]);
        assert!(batcher.flush().is_none());
        assert_eq!(batcher.max_size(), 8);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_cap_rejected() {
        let _ = Batcher::<u8>::new(0);
    }

    #[test]
    fn traced_batches_roundtrip_and_first_claim_wins() {
        let ctx = TraceCtx {
            id: (1u64 << 40) | 3,
            origin: 1,
            hops: 0,
        };
        let other = TraceCtx { id: 7, ..ctx };
        let batch = Batch::new(vec![1u32]).with_trace(Some(ctx));
        let back: Batch<u32> = decode(&encode(&batch)).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.trace, Some(ctx));

        let mut batcher = Batcher::new(4);
        assert!(batcher.attach_trace(ctx), "first traced member claims");
        assert!(!batcher.attach_trace(other), "later members join instead");
        batcher.push(1u32);
        let flushed = batcher.flush().unwrap();
        assert_eq!(flushed.trace, Some(ctx));
        // The claim does not leak into the next batch.
        batcher.push(2u32);
        assert_eq!(batcher.flush().unwrap().trace, None);
    }
}
