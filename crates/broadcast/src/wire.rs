//! Canonical binary codecs for the protocol message enums.
//!
//! The simulator moves typed messages between actors in memory, so the
//! protocols never needed a byte representation for their *envelopes* —
//! only for the payloads they hash and sign. A real transport
//! (`at-node`) moves bytes, so every backend message type gets a
//! canonical [`Encode`]/[`Decode`] pair here, built on [`at_model::codec`]:
//! one tag byte per variant, then the fields in declaration order.
//!
//! Decoding is **total on untrusted input**: truncated frames, unknown
//! tags, and oversized length prefixes return a [`CodecError`]; nothing
//! panics or over-allocates (sequence lengths are bounded by
//! [`at_model::codec::MAX_SEQUENCE_LEN`], and `Vec` pre-allocation is
//! capped independently of the declared length).
//!
//! Signature generics: the codecs are generic over the signature type
//! `S`, so they cover both [`crate::auth::NoAuth`] (`S = ()`, zero
//! bytes on the wire) and [`crate::auth::EdAuth`]
//! (`S = at_crypto::Signature`, 64 bytes).

use crate::account_order::AccountOrderMsg;
use crate::bracha::BrachaMsg;
use crate::echo::EchoMsg;
use at_model::codec::{Decode, Encode, Reader, Writer};
use at_model::{AccountId, CodecError, ProcessId, SeqNo};

impl<P: Encode> Encode for BrachaMsg<P> {
    fn encode(&self, w: &mut Writer) {
        match self {
            BrachaMsg::Init { seq, payload } => {
                w.put_u8(0);
                seq.encode(w);
                payload.encode(w);
            }
            BrachaMsg::Echo {
                source,
                seq,
                payload,
            } => {
                w.put_u8(1);
                source.encode(w);
                seq.encode(w);
                payload.encode(w);
            }
            BrachaMsg::Ready {
                source,
                seq,
                payload,
            } => {
                w.put_u8(2);
                source.encode(w);
                seq.encode(w);
                payload.encode(w);
            }
        }
    }
}

impl<P: Decode> Decode for BrachaMsg<P> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(BrachaMsg::Init {
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
            }),
            1 => Ok(BrachaMsg::Echo {
                source: ProcessId::decode(r)?,
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
            }),
            2 => Ok(BrachaMsg::Ready {
                source: ProcessId::decode(r)?,
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
            }),
            tag => Err(CodecError::InvalidTag {
                type_name: "BrachaMsg",
                tag,
            }),
        }
    }
}

impl<P: Encode, S: Encode> Encode for EchoMsg<P, S> {
    fn encode(&self, w: &mut Writer) {
        match self {
            EchoMsg::Send { seq, payload, sig } => {
                w.put_u8(0);
                seq.encode(w);
                payload.encode(w);
                sig.encode(w);
            }
            EchoMsg::Echo {
                source,
                seq,
                digest,
                share,
            } => {
                w.put_u8(1);
                source.encode(w);
                seq.encode(w);
                digest.encode(w);
                share.encode(w);
            }
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate,
            } => {
                w.put_u8(2);
                source.encode(w);
                seq.encode(w);
                payload.encode(w);
                sig.encode(w);
                certificate.encode(w);
            }
        }
    }
}

impl<P: Decode, S: Decode> Decode for EchoMsg<P, S> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(EchoMsg::Send {
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
                sig: S::decode(r)?,
            }),
            1 => Ok(EchoMsg::Echo {
                source: ProcessId::decode(r)?,
                seq: SeqNo::decode(r)?,
                digest: <[u8; 32]>::decode(r)?,
                share: S::decode(r)?,
            }),
            2 => Ok(EchoMsg::Final {
                source: ProcessId::decode(r)?,
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
                sig: S::decode(r)?,
                certificate: Vec::<(ProcessId, S)>::decode(r)?,
            }),
            tag => Err(CodecError::InvalidTag {
                type_name: "EchoMsg",
                tag,
            }),
        }
    }
}

impl<P: Encode, S: Encode> Encode for AccountOrderMsg<P, S> {
    fn encode(&self, w: &mut Writer) {
        match self {
            AccountOrderMsg::Send {
                account,
                seq,
                payload,
                sig,
            } => {
                w.put_u8(0);
                account.encode(w);
                seq.encode(w);
                payload.encode(w);
                sig.encode(w);
            }
            AccountOrderMsg::Ack {
                account,
                seq,
                digest,
                share,
            } => {
                w.put_u8(1);
                account.encode(w);
                seq.encode(w);
                digest.encode(w);
                share.encode(w);
            }
            AccountOrderMsg::Final {
                sender,
                account,
                seq,
                payload,
                certificate,
            } => {
                w.put_u8(2);
                sender.encode(w);
                account.encode(w);
                seq.encode(w);
                payload.encode(w);
                certificate.encode(w);
            }
        }
    }
}

impl<P: Decode, S: Decode> Decode for AccountOrderMsg<P, S> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(AccountOrderMsg::Send {
                account: AccountId::decode(r)?,
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
                sig: S::decode(r)?,
            }),
            1 => Ok(AccountOrderMsg::Ack {
                account: AccountId::decode(r)?,
                seq: SeqNo::decode(r)?,
                digest: <[u8; 32]>::decode(r)?,
                share: S::decode(r)?,
            }),
            2 => Ok(AccountOrderMsg::Final {
                sender: ProcessId::decode(r)?,
                account: AccountId::decode(r)?,
                seq: SeqNo::decode(r)?,
                payload: P::decode(r)?,
                certificate: Vec::<(ProcessId, S)>::decode(r)?,
            }),
            tag => Err(CodecError::InvalidTag {
                type_name: "AccountOrderMsg",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_crypto::Signature;
    use at_model::codec::{decode, encode};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn s(v: u64) -> SeqNo {
        SeqNo::new(v)
    }

    fn sig(byte: u8) -> Signature {
        Signature::from_bytes(&[byte; 64])
    }

    #[test]
    fn bracha_messages_roundtrip() {
        let msgs: Vec<BrachaMsg<Vec<u8>>> = vec![
            BrachaMsg::Init {
                seq: s(1),
                payload: vec![1, 2, 3],
            },
            BrachaMsg::Echo {
                source: p(2),
                seq: s(9),
                payload: vec![],
            },
            BrachaMsg::Ready {
                source: p(0),
                seq: s(u64::MAX),
                payload: vec![0xFF],
            },
        ];
        for msg in msgs {
            let bytes = encode(&msg);
            let back: BrachaMsg<Vec<u8>> = decode(&bytes).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn echo_messages_roundtrip_with_unit_and_real_signatures() {
        let unit: EchoMsg<u64, ()> = EchoMsg::Final {
            source: p(1),
            seq: s(4),
            payload: 77,
            sig: (),
            certificate: vec![(p(0), ()), (p(2), ())],
        };
        let bytes = encode(&unit);
        let back: EchoMsg<u64, ()> = decode(&bytes).expect("decode");
        assert_eq!(back, unit);

        let signed: EchoMsg<u64, Signature> = EchoMsg::Echo {
            source: p(3),
            seq: s(2),
            digest: [7; 32],
            share: sig(0xAB),
        };
        let bytes = encode(&signed);
        let back: EchoMsg<u64, Signature> = decode(&bytes).expect("decode");
        assert_eq!(back, signed);
    }

    #[test]
    fn account_order_messages_roundtrip() {
        let msg: AccountOrderMsg<Vec<u8>, Signature> = AccountOrderMsg::Final {
            sender: p(2),
            account: AccountId::new(2),
            seq: s(3),
            payload: vec![9; 40],
            certificate: vec![(p(0), sig(1)), (p(1), sig(2)), (p(3), sig(3))],
        };
        let bytes = encode(&msg);
        let back: AccountOrderMsg<Vec<u8>, Signature> = decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn unknown_tags_error() {
        assert!(matches!(
            decode::<BrachaMsg<u64>>(&[9]),
            Err(CodecError::InvalidTag {
                type_name: "BrachaMsg",
                tag: 9
            })
        ));
        assert!(matches!(
            decode::<EchoMsg<u64, ()>>(&[3]),
            Err(CodecError::InvalidTag {
                type_name: "EchoMsg",
                tag: 3
            })
        ));
        assert!(matches!(
            decode::<AccountOrderMsg<u64, ()>>(&[0xFE]),
            Err(CodecError::InvalidTag {
                type_name: "AccountOrderMsg",
                tag: 0xFE
            })
        ));
    }

    #[test]
    fn truncated_messages_error_never_panic() {
        let msg: EchoMsg<Vec<u8>, Signature> = EchoMsg::Send {
            seq: s(1),
            payload: vec![1; 16],
            sig: sig(9),
        };
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            assert!(
                decode::<EchoMsg<Vec<u8>, Signature>>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
