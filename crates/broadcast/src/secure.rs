//! The [`SecureBroadcast`] abstraction: one interface over every secure
//! broadcast implementation in this crate.
//!
//! Section 5 of the paper proves asset transfer needs only *secure
//! broadcast* — Integrity, Agreement, Validity, Source Order — and notes
//! the implementation is swappable: from Bracha's signature-free `O(n²)`
//! protocol to Malkhi–Reiter-style signed echo with `O(n)` sender cost.
//! The trait captures exactly that contract so the engine runtime (and
//! everything above it: scenarios, benches, examples) is generic over the
//! protocol actually carrying its payloads:
//!
//! * [`BrachaBroadcast`] — 3 one-way delays, `O(n²)` messages, no
//!   signatures;
//! * [`EchoBroadcast`] — 2 round trips, `O(n)` sender messages plus a
//!   quorum certificate (an optional `O(n²)` certificate-forwarding step
//!   buys totality against Byzantine senders);
//! * [`AccountOrderBackend`] — the Section 6 account-order broadcast
//!   specialised to the base topology (account `i` owned by process `i`),
//!   via a thin adapter that assigns per-account sequence numbers and
//!   attributes deliveries to the owning process.
//!
//! # Delivery contract
//!
//! Implementations fill a [`Step`] sans-I/O, and must deliver payloads of
//! each source **gaplessly, in sequence order, exactly once** (the FIFO
//! strengthening of Source Order noted in Section 5.2). Callers may
//! therefore rely on the backend's own instance bookkeeping for
//! deduplication and equivocation suppression instead of keeping a
//! parallel `seen` ledger.

use crate::account_order::{AccountDelivery, AccountOrderBroadcast, AccountOrderMsg};
use crate::auth::Authenticator;
use crate::bracha::{BrachaBroadcast, BrachaMsg};
use crate::echo::{EchoBroadcast, EchoMsg};
use crate::types::{CryptoOps, Delivery, Outgoing, Step};
use at_model::{AccountId, Encode, ProcessId, SeqNo};
use at_obs::{TraceCtx, Tracer};
use std::fmt;

/// How a backend pulls the causal trace context out of an opaque
/// payload (payload types without tracing return `None`).
pub type TraceExtract<P> = fn(&P) -> Option<TraceCtx>;

/// A pluggable secure-broadcast endpoint over payloads `P`.
///
/// See the [module docs](self) for the delivery contract. The
/// introspection methods expose the protocol's quorum structure and the
/// endpoint's dedup state so upper layers never re-derive either.
pub trait SecureBroadcast<P: Clone + Encode>: Send {
    /// The wire message type of the protocol.
    type Msg: Clone + Send;

    /// Broadcasts `payload` with this endpoint's next sequence number;
    /// returns the sequence number used.
    fn broadcast(&mut self, payload: P, step: &mut Step<Self::Msg, P>) -> SeqNo;

    /// Handles a protocol message from `from`.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, step: &mut Step<Self::Msg, P>);

    /// *Byzantine harness only*: opens one instance but sends `left` to
    /// the lower half of the system and `right` to the upper half — the
    /// equivocation (double-spend) attempt every backend must defeat.
    fn broadcast_split(&mut self, left: P, right: P, step: &mut Step<Self::Msg, P>) -> SeqNo;

    /// The protocol's delivery-enabling quorum.
    fn quorum(&self) -> usize;

    /// The tolerated number of Byzantine processes `f`.
    fn fault_threshold(&self) -> usize;

    /// Number of broadcast instances with local protocol state.
    fn instance_count(&self) -> usize;

    /// Number of instances this endpoint has delivered.
    fn delivered_count(&self) -> usize;

    /// Cumulative signature operations (zeros for signature-free
    /// protocols).
    fn crypto_ops(&self) -> CryptoOps;

    /// Wires causal tracing into the protocol: payloads whose `extract`
    /// yields a [`TraceCtx`] get their protocol steps (send, echo,
    /// ready/certificate, deliver, verify span) recorded into `tracer`.
    /// Defaults to a no-op so payload types without tracing (tests,
    /// simulated runs) cost nothing.
    fn set_tracer(&mut self, tracer: Tracer, extract: TraceExtract<P>) {
        let _ = (tracer, extract);
    }

    /// Discards the per-instance protocol state of every broadcast this
    /// endpoint has already delivered, returning how many instances were
    /// pruned. Deliveries are irrevocable (the quorum that enabled them
    /// is durable evidence), so the retained state only served
    /// deduplication — which the per-source delivery floors, kept
    /// forever in `O(n)` space, continue to provide: late or replayed
    /// frames for a pruned instance are dropped, never re-delivered.
    /// [`SecureBroadcast::delivered_count`] stays monotone across
    /// pruning. Defaults to a no-op returning 0.
    fn prune_delivered(&mut self) -> usize {
        0
    }

    /// Raises the delivery floor of `source` to instance `floor`: every
    /// instance of `source` with a sequence number at or below it is
    /// treated as already delivered (accepted-and-discarded on arrival),
    /// and delivery resumes gaplessly at `floor + 1`. When `source` is
    /// this endpoint, its own next broadcast sequence number is bumped
    /// too, so a cold-started endpoint resumes its stream instead of
    /// colliding with its previous incarnation's instances. Snapshot
    /// bootstrap calls this once per source before the first frame
    /// arrives. Defaults to a no-op.
    fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        let _ = (source, floor);
    }
}

impl<P: Clone + Encode + Send> SecureBroadcast<P> for BrachaBroadcast<P> {
    type Msg = BrachaMsg<P>;

    fn broadcast(&mut self, payload: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        BrachaBroadcast::broadcast(self, payload, step)
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, step: &mut Step<Self::Msg, P>) {
        BrachaBroadcast::on_message(self, from, msg, step);
    }

    fn broadcast_split(&mut self, left: P, right: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        BrachaBroadcast::broadcast_split(self, left, right, step)
    }

    fn quorum(&self) -> usize {
        self.echo_quorum()
    }

    fn fault_threshold(&self) -> usize {
        BrachaBroadcast::fault_threshold(self)
    }

    fn instance_count(&self) -> usize {
        BrachaBroadcast::instance_count(self)
    }

    fn delivered_count(&self) -> usize {
        BrachaBroadcast::delivered_count(self)
    }

    fn crypto_ops(&self) -> CryptoOps {
        CryptoOps::default()
    }

    fn set_tracer(&mut self, tracer: Tracer, extract: TraceExtract<P>) {
        BrachaBroadcast::set_tracer(self, tracer, extract);
    }

    fn prune_delivered(&mut self) -> usize {
        BrachaBroadcast::prune_delivered(self)
    }

    fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        BrachaBroadcast::set_delivery_floor(self, source, floor);
    }
}

impl<P, A> SecureBroadcast<P> for EchoBroadcast<P, A>
where
    P: Clone + Encode + Send,
    A: Authenticator + Send,
    A::Sig: Send,
{
    type Msg = EchoMsg<P, A::Sig>;

    fn broadcast(&mut self, payload: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        EchoBroadcast::broadcast(self, payload, step)
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, step: &mut Step<Self::Msg, P>) {
        EchoBroadcast::on_message(self, from, msg, step);
    }

    fn broadcast_split(&mut self, left: P, right: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        EchoBroadcast::broadcast_split(self, left, right, step)
    }

    fn quorum(&self) -> usize {
        EchoBroadcast::quorum(self)
    }

    fn fault_threshold(&self) -> usize {
        EchoBroadcast::fault_threshold(self)
    }

    fn instance_count(&self) -> usize {
        EchoBroadcast::instance_count(self)
    }

    fn delivered_count(&self) -> usize {
        EchoBroadcast::delivered_count(self)
    }

    fn crypto_ops(&self) -> CryptoOps {
        EchoBroadcast::crypto_ops(self)
    }

    fn set_tracer(&mut self, tracer: Tracer, extract: TraceExtract<P>) {
        EchoBroadcast::set_tracer(self, tracer, extract);
    }

    fn prune_delivered(&mut self) -> usize {
        EchoBroadcast::prune_delivered(self)
    }

    fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        EchoBroadcast::set_delivery_floor(self, source, floor);
    }
}

/// The Section 6 account-order broadcast as a [`SecureBroadcast`] backend
/// for the base topology: account `i` belongs to process `i`.
///
/// The adapter assigns this process's per-account sequence numbers,
/// enables the sole-owner acknowledgement rule (a `SEND` for account `a`
/// from any process but `a` is never acknowledged, so no other process
/// can hijack or stall the account's stream), and attributes every
/// delivery to the owning process. Because the underlying protocol
/// delivers each account's messages gaplessly in sequence order, the
/// adapter satisfies the FIFO delivery contract by construction.
pub struct AccountOrderBackend<P, A: Authenticator> {
    inner: AccountOrderBroadcast<P, A>,
    account: AccountId,
    next_seq: SeqNo,
}

impl<P: Clone + Encode, A: Authenticator> AccountOrderBackend<P, A> {
    /// Creates the endpoint for process `me` of `n`, broadcasting on its
    /// own account.
    pub fn new(me: ProcessId, n: usize, auth: A) -> Self {
        let mut inner = AccountOrderBroadcast::new(me, n, auth);
        inner.set_sole_owner(true);
        AccountOrderBackend {
            inner,
            account: AccountId::new(me.index()),
            next_seq: SeqNo::ZERO,
        }
    }

    /// Enables/disables FINAL forwarding on the wrapped protocol.
    pub fn set_forward_final(&mut self, forward: bool) {
        self.inner.set_forward_final(forward);
    }

    /// The wrapped account-order endpoint.
    pub fn inner(&self) -> &AccountOrderBroadcast<P, A> {
        &self.inner
    }

    fn convert(
        native: Step<AccountOrderMsg<P, A::Sig>, AccountDelivery<P>>,
        step: &mut Step<AccountOrderMsg<P, A::Sig>, P>,
    ) {
        for Outgoing { to, msg } in native.outgoing {
            step.send(to, msg);
        }
        for Delivery { payload, .. } in native.deliveries {
            // Attribute by account, not by the FINAL's (forgeable) sender
            // field: the certificate covers `(account, seq, digest)`, and
            // under the sole-owner rule only the owner's payloads can
            // certify.
            let AccountDelivery {
                account,
                seq,
                payload,
                ..
            } = payload;
            step.deliver(ProcessId::new(account.index()), seq, payload);
        }
    }
}

impl<P, A> SecureBroadcast<P> for AccountOrderBackend<P, A>
where
    P: Clone + Encode + Send,
    A: Authenticator + Send,
    A::Sig: Send,
{
    type Msg = AccountOrderMsg<P, A::Sig>;

    fn broadcast(&mut self, payload: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        let mut native = Step::new();
        self.inner
            .broadcast(self.account, seq, payload, &mut native);
        Self::convert(native, step);
        seq
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, step: &mut Step<Self::Msg, P>) {
        let mut native = Step::new();
        self.inner.on_message(from, msg, &mut native);
        Self::convert(native, step);
    }

    fn broadcast_split(&mut self, left: P, right: P, step: &mut Step<Self::Msg, P>) -> SeqNo {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        let mut native = Step::new();
        self.inner
            .broadcast_split(self.account, seq, left, right, &mut native);
        Self::convert(native, step);
        seq
    }

    fn quorum(&self) -> usize {
        self.inner.quorum()
    }

    fn fault_threshold(&self) -> usize {
        self.inner.fault_threshold()
    }

    fn instance_count(&self) -> usize {
        self.inner.instance_count()
    }

    fn delivered_count(&self) -> usize {
        self.inner.delivered_count()
    }

    fn crypto_ops(&self) -> CryptoOps {
        self.inner.crypto_ops()
    }

    fn set_tracer(&mut self, tracer: Tracer, extract: TraceExtract<P>) {
        self.inner.set_tracer(tracer, extract);
    }

    fn prune_delivered(&mut self) -> usize {
        self.inner.prune_delivered()
    }

    fn set_delivery_floor(&mut self, source: ProcessId, floor: SeqNo) {
        // Process `i` broadcasts on account `i` in the base topology, so
        // the per-source floor maps 1:1 onto a per-account floor.
        let account = AccountId::new(source.index());
        self.inner.set_delivery_floor(account, floor);
        if source == ProcessId::new(self.account.index()) && floor.value() > self.next_seq.value() {
            self.next_seq = floor;
        }
    }
}

impl<P: Clone + Encode, A: Authenticator> fmt::Debug for AccountOrderBackend<P, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccountOrderBackend({:?})", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{EdAuth, NoAuth};
    use std::collections::VecDeque;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Runs a closed system of endpoints to quiescence through the trait
    /// alone; returns each process's deliveries.
    fn drive<B: SecureBroadcast<u64>>(
        endpoints: &mut [B],
        broadcasts: Vec<(usize, u64)>,
    ) -> Vec<Vec<Delivery<u64>>> {
        let n = endpoints.len();
        let mut inflight: VecDeque<(ProcessId, ProcessId, B::Msg)> = VecDeque::new();
        let mut delivered: Vec<Vec<Delivery<u64>>> = vec![Vec::new(); n];
        for (source, value) in broadcasts {
            let mut step = Step::new();
            endpoints[source].broadcast(value, &mut step);
            for out in step.outgoing {
                inflight.push_back((p(source as u32), out.to, out.msg));
            }
            delivered[source].extend(step.deliveries);
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()].extend(step.deliveries);
        }
        delivered
    }

    /// Same closed system, but the source equivocates via
    /// `broadcast_split`. The attacker's endpoint stays in the loop — it
    /// collects echo shares and *would* certify and deliver if a quorum
    /// ever formed, so an empty result exercises the quorum-intersection
    /// defense rather than a dead sender.
    fn drive_split<B: SecureBroadcast<u64>>(
        endpoints: &mut [B],
        source: usize,
        left: u64,
        right: u64,
    ) -> Vec<Vec<Delivery<u64>>> {
        let n = endpoints.len();
        let mut inflight: VecDeque<(ProcessId, ProcessId, B::Msg)> = VecDeque::new();
        let mut delivered: Vec<Vec<Delivery<u64>>> = vec![Vec::new(); n];
        let mut step = Step::new();
        endpoints[source].broadcast_split(left, right, &mut step);
        for out in step.outgoing {
            inflight.push_back((p(source as u32), out.to, out.msg));
        }
        while let Some((from, to, msg)) = inflight.pop_front() {
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push_back((to, out.to, out.msg));
            }
            delivered[to.as_usize()].extend(step.deliveries);
        }
        delivered
    }

    fn bracha_system(n: usize) -> Vec<BrachaBroadcast<u64>> {
        (0..n)
            .map(|i| BrachaBroadcast::new(p(i as u32), n))
            .collect()
    }

    fn echo_system(n: usize) -> Vec<EchoBroadcast<u64, NoAuth>> {
        (0..n)
            .map(|i| EchoBroadcast::new(p(i as u32), n, NoAuth))
            .collect()
    }

    fn account_system(n: usize) -> Vec<AccountOrderBackend<u64, NoAuth>> {
        (0..n)
            .map(|i| AccountOrderBackend::new(p(i as u32), n, NoAuth))
            .collect()
    }

    fn assert_fifo_everywhere(delivered: &[Vec<Delivery<u64>>], source: u32, values: &[u64]) {
        for (i, view) in delivered.iter().enumerate() {
            let got: Vec<u64> = view
                .iter()
                .filter(|d| d.source == p(source))
                .map(|d| d.payload)
                .collect();
            assert_eq!(got, values, "process {i}");
            let seqs: Vec<u64> = view
                .iter()
                .filter(|d| d.source == p(source))
                .map(|d| d.seq.value())
                .collect();
            assert_eq!(seqs, (1..=values.len() as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_backends_deliver_fifo_through_the_trait() {
        let broadcasts = vec![(0usize, 10u64), (0, 20), (0, 30)];
        let mut bracha = bracha_system(4);
        assert_fifo_everywhere(&drive(&mut bracha, broadcasts.clone()), 0, &[10, 20, 30]);
        let mut echo = echo_system(4);
        assert_fifo_everywhere(&drive(&mut echo, broadcasts.clone()), 0, &[10, 20, 30]);
        let mut account = account_system(4);
        assert_fifo_everywhere(&drive(&mut account, broadcasts), 0, &[10, 20, 30]);
    }

    #[test]
    fn split_broadcast_never_delivers_on_any_backend() {
        let mut bracha = bracha_system(4);
        let delivered = drive_split(&mut bracha, 0, 1, 2);
        assert!(delivered.iter().all(Vec::is_empty), "bracha delivered");
        let mut echo = echo_system(4);
        let delivered = drive_split(&mut echo, 0, 1, 2);
        assert!(delivered.iter().all(Vec::is_empty), "echo delivered");
        let mut account = account_system(4);
        let delivered = drive_split(&mut account, 0, 1, 2);
        assert!(
            delivered.iter().all(Vec::is_empty),
            "account-order delivered"
        );
    }

    #[test]
    fn introspection_is_consistent_across_backends() {
        fn check<B: SecureBroadcast<u64>>(backend: &B, n: usize) {
            assert_eq!(backend.fault_threshold(), (n - 1) / 3);
            assert_eq!(backend.quorum(), (n + (n - 1) / 3) / 2 + 1);
            assert_eq!(backend.instance_count(), 0);
            assert_eq!(backend.delivered_count(), 0);
        }
        check(&BrachaBroadcast::<u64>::new(p(0), 7), 7);
        check(&EchoBroadcast::<u64, NoAuth>::new(p(0), 7, NoAuth), 7);
        check(&AccountOrderBackend::<u64, NoAuth>::new(p(0), 7, NoAuth), 7);
    }

    #[test]
    fn delivered_count_tracks_deliveries() {
        let mut endpoints = echo_system(4);
        drive(&mut endpoints, vec![(1, 7)]);
        for endpoint in &endpoints {
            assert_eq!(SecureBroadcast::<u64>::delivered_count(endpoint), 1);
        }
        let mut endpoints = bracha_system(4);
        drive(&mut endpoints, vec![(1, 7), (2, 8)]);
        for endpoint in &endpoints {
            assert_eq!(SecureBroadcast::<u64>::delivered_count(endpoint), 2);
        }
    }

    #[test]
    fn crypto_ops_count_real_signature_work() {
        let auth = EdAuth::deterministic(4, 5);
        let mut endpoints: Vec<EchoBroadcast<u64, EdAuth>> = (0..4)
            .map(|i| EchoBroadcast::new(p(i as u32), 4, auth.clone()))
            .collect();
        let delivered = drive(&mut endpoints, vec![(0, 9)]);
        assert!(delivered.iter().all(|d| d.len() == 1));
        // The sender signed its SEND; every receiver verified it and
        // signed an echo share; certificates were verified on delivery.
        let sender_ops = SecureBroadcast::<u64>::crypto_ops(&endpoints[0]);
        assert!(sender_ops.signs >= 2, "sender ops: {sender_ops:?}");
        let receiver_ops = SecureBroadcast::<u64>::crypto_ops(&endpoints[1]);
        assert!(receiver_ops.verifies >= 4, "receiver ops: {receiver_ops:?}");
        // Bracha reports zero signature work.
        let bracha = BrachaBroadcast::<u64>::new(p(0), 4);
        assert_eq!(SecureBroadcast::<u64>::crypto_ops(&bracha).total(), 0);
    }

    #[test]
    fn prune_and_floor_behave_uniformly_through_the_trait() {
        fn exercise<B: SecureBroadcast<u64>>(mut endpoints: Vec<B>, mut fresh: B) {
            // A completed broadcast is prunable everywhere; the delivered
            // count stays monotone and replays stay suppressed (covered
            // per-backend; here we check the shared contract).
            drive(&mut endpoints, vec![(0, 5)]);
            for endpoint in &mut endpoints {
                assert_eq!(endpoint.delivered_count(), 1);
                assert_eq!(endpoint.prune_delivered(), 1);
                assert_eq!(endpoint.instance_count(), 0);
                assert_eq!(endpoint.delivered_count(), 1);
                assert_eq!(endpoint.prune_delivered(), 0, "idempotent");
            }
            // A cold endpoint that learns its own stream reached seq 3
            // resumes broadcasting at 4.
            fresh.set_delivery_floor(p(0), SeqNo::new(3));
            let mut step = Step::new();
            assert_eq!(fresh.broadcast(9, &mut step), SeqNo::new(4));
        }
        exercise(bracha_system(4), BrachaBroadcast::new(p(0), 4));
        exercise(echo_system(4), EchoBroadcast::new(p(0), 4, NoAuth));
        exercise(account_system(4), AccountOrderBackend::new(p(0), 4, NoAuth));
    }

    #[test]
    fn account_order_backend_rejects_non_owner_sends() {
        let n = 4;
        let mut endpoints = account_system(n);
        // p2 crafts a SEND for *p0's* account stream via the raw inner
        // protocol message; under the sole-owner rule nobody acknowledges,
        // so the hijack attempt cannot certify.
        let mut step = Step::new();
        let mut rogue: AccountOrderBroadcast<u64, NoAuth> =
            AccountOrderBroadcast::new(p(2), n, NoAuth);
        let mut native = Step::new();
        rogue.broadcast(AccountId::new(0), SeqNo::new(1), 666, &mut native);
        let mut acks = 0;
        for out in native.outgoing {
            if out.to != p(2) {
                let mut reply = Step::new();
                endpoints[out.to.as_usize()].on_message(p(2), out.msg, &mut reply);
                acks += reply.outgoing.len();
                assert!(reply.deliveries.is_empty());
            }
        }
        assert_eq!(acks, 0, "non-owner SEND must never be acknowledged");
        // The owner's own stream is unaffected.
        let seq = endpoints[0].broadcast(1, &mut step);
        assert_eq!(seq, SeqNo::new(1));
    }

    #[test]
    fn adapter_debug_renders() {
        let backend: AccountOrderBackend<u64, NoAuth> = AccountOrderBackend::new(p(3), 4, NoAuth);
        assert!(format!("{backend:?}").contains("AccountOrderBackend"));
    }
}
