//! # at-broadcast — secure broadcast primitives
//!
//! Section 5 of the paper replaces consensus with a *secure broadcast*
//! providing Integrity, Agreement, Validity and Source Order; Section 6
//! strengthens source order to *account order*. This crate implements the
//! corresponding protocols as sans-I/O state machines, independent of the
//! simulator (they fill a [`types::Step`] with messages to send and
//! payloads to deliver):
//!
//! * [`bracha`] — Bracha's reliable broadcast, the paper's "naive
//!   quadratic" implementation (reference [10]): 3 rounds, `O(n²)`
//!   messages, no signatures (authenticated channels);
//! * [`echo`] — signed-echo broadcast in the Malkhi–Reiter style
//!   (references [35, 36]): 2 round trips, `O(n)` sender messages plus
//!   certificates;
//! * [`account_order`] — the Section 6 modification whose
//!   acknowledgement rule enforces per-account sequencing even for
//!   compromised shared accounts;
//! * [`auth`] — pluggable signing ([`EdAuth`] real Ed25519 /
//!   [`NoAuth`] authenticated-channels model);
//! * [`secure`] — the [`SecureBroadcast`] trait unifying the three
//!   protocols behind one interface (the engine runtime is generic over
//!   it), plus the [`AccountOrderBackend`] adapter;
//! * [`types`] — delivery/step plumbing, the source-order buffer, and
//!   the [`CryptoOps`] signature-work counters;
//! * [`wire`] — canonical [`at_model::codec`] encodings for every
//!   protocol message enum, so the state machines can ride a real byte
//!   transport (`at-node`) unchanged.
//!
//! # Example
//!
//! ```
//! use at_broadcast::bracha::{BrachaBroadcast, BrachaMsg};
//! use at_broadcast::types::Step;
//! use at_model::ProcessId;
//!
//! let mut sender: BrachaBroadcast<u64> = BrachaBroadcast::new(ProcessId::new(0), 4);
//! let mut step = Step::new();
//! let seq = sender.broadcast(42, &mut step);
//! assert_eq!(seq.value(), 1);
//! assert_eq!(step.outgoing.len(), 4); // INIT to all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account_order;
pub mod auth;
pub mod batch;
pub mod bracha;
pub mod echo;
pub mod secure;
pub mod types;
pub mod wire;

pub use account_order::{AccountDelivery, AccountOrderBroadcast, AccountOrderMsg};
pub use auth::{Authenticator, BatchVerifyItem, EdAuth, NoAuth, ObservedAuth};
pub use batch::{Batch, Batcher};
pub use bracha::{BrachaBroadcast, BrachaMsg};
pub use echo::{EchoBroadcast, EchoMsg};
pub use secure::{AccountOrderBackend, SecureBroadcast, TraceExtract};
pub use types::{CryptoOps, Delivery, Outgoing, SourceOrderBuffer, Step};
