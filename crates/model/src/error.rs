//! Error types shared across the workspace.

use crate::ids::{AccountId, Amount, ProcessId};
use std::error::Error;
use std::fmt;

/// Why a `transfer(a, b, x)` invocation returned `false` under the
/// sequential specification `Δ` of Section 2.2.
///
/// The paper folds all failures into the single response `false`; we keep
/// the reason ([C-GOOD-ERR]) because callers and tests want to distinguish
/// an authorization failure from an insufficient balance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransferError {
    /// The invoking process is not in `µ(a)` for the source account.
    NotOwner {
        /// The process that attempted the debit.
        process: ProcessId,
        /// The account it attempted to debit.
        account: AccountId,
    },
    /// The source account balance is lower than the transferred amount.
    InsufficientBalance {
        /// The account being debited.
        account: AccountId,
        /// The balance available at the linearization point.
        balance: Amount,
        /// The amount the transfer attempted to withdraw.
        requested: Amount,
    },
    /// The source or destination account does not exist in `A`.
    UnknownAccount {
        /// The unknown account.
        account: AccountId,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::NotOwner { process, account } => {
                write!(f, "process {process} does not own account {account}")
            }
            TransferError::InsufficientBalance {
                account,
                balance,
                requested,
            } => write!(
                f,
                "account {account} holds {balance} but the transfer requested {requested}"
            ),
            TransferError::UnknownAccount { account } => {
                write!(f, "account {account} is not part of the account set")
            }
        }
    }
}

impl Error for TransferError {}

/// Decoding failure in the canonical binary codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEnd {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A tag byte did not correspond to any variant of the decoded type.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the configured sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum permitted length.
        limit: u64,
    },
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A UTF-8 string field contained invalid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {type_name}")
            }
            CodecError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_error_display() {
        let e = TransferError::NotOwner {
            process: ProcessId::new(1),
            account: AccountId::new(2),
        };
        assert_eq!(e.to_string(), "process p1 does not own account acct2");

        let e = TransferError::InsufficientBalance {
            account: AccountId::new(0),
            balance: Amount::new(3),
            requested: Amount::new(9),
        };
        assert!(e.to_string().contains("holds 3"));
        assert!(e.to_string().contains("requested 9"));

        let e = TransferError::UnknownAccount {
            account: AccountId::new(5),
        };
        assert!(e.to_string().contains("acct5"));
    }

    #[test]
    fn codec_error_display() {
        let e = CodecError::UnexpectedEnd {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        let e = CodecError::InvalidTag {
            type_name: "Response",
            tag: 0xff,
        };
        assert!(e.to_string().contains("0xff"));
        assert!(CodecError::InvalidUtf8.to_string().contains("utf-8"));
        assert!(CodecError::TrailingBytes { remaining: 2 }
            .to_string()
            .contains("trailing"));
        assert!(CodecError::LengthOverflow {
            declared: 10,
            limit: 5
        }
        .to_string()
        .contains("exceeds"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TransferError>();
        assert_error::<CodecError>();
    }
}
