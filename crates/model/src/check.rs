//! Linearizability checking.
//!
//! [`linearizable`] implements a Wing–Gong style search: it looks for a
//! legal sequential ordering of a concurrent [`History`] that respects
//! real-time precedence (`≺_H ⊆ ≺_S`) and the sequential specification `Δ`
//! embodied by [`Ledger`].
//!
//! Pending (incomplete) invocations are handled as the paper's completion
//! construction prescribes: each may either be dropped or completed with the
//! response `Δ` determines at its linearization point.
//!
//! The search memoizes visited configurations `(linearized-set, state)` and
//! is exhaustive, so a [`CheckOutcome::NotLinearizable`] verdict is a proof
//! of violation for the given history. Intended for histories of up to a
//! few dozen concurrent operations, which is what the test harnesses
//! produce.

use crate::history::{History, OpId, OpRecord, Operation, Response};
use crate::spec::Ledger;
use std::collections::HashSet;

/// The verdict of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The history is linearizable; the witness lists the operations in a
    /// legal linearization order (dropped pending operations excluded).
    Linearizable {
        /// A legal sequential order of the operations.
        witness: Vec<OpId>,
    },
    /// No legal linearization exists.
    NotLinearizable,
}

impl CheckOutcome {
    /// Whether the verdict is positive.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, CheckOutcome::Linearizable { .. })
    }
}

/// A node budget for [`linearizable_bounded`].
///
/// The exhaustive search is exponential in the worst case; harnesses that
/// check thousands of machine-generated histories (the `at-check`
/// schedule explorer) bound it so one pathological history cannot stall a
/// whole exploration run. A budget of a few thousand nodes is far beyond
/// what the explorer's small histories ever need — exhaustion signals a
/// harness bug, not a protocol bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckBudget {
    /// Maximum search-tree nodes to expand before giving up.
    pub max_nodes: usize,
}

impl CheckBudget {
    /// No bound: the search runs to completion.
    pub const UNLIMITED: CheckBudget = CheckBudget {
        max_nodes: usize::MAX,
    };

    /// A budget of `max_nodes` search nodes.
    pub fn nodes(max_nodes: usize) -> Self {
        CheckBudget { max_nodes }
    }
}

/// The verdict of a budgeted linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundedOutcome {
    /// The history is linearizable (witness as in
    /// [`CheckOutcome::Linearizable`]).
    Linearizable {
        /// A legal sequential order of the operations.
        witness: Vec<OpId>,
    },
    /// No legal linearization exists — a proof of violation, never
    /// returned merely because the budget ran out.
    NotLinearizable,
    /// The search hit the node budget before reaching a verdict.
    BudgetExhausted {
        /// Nodes expanded before giving up.
        explored: usize,
    },
}

impl BoundedOutcome {
    /// Whether the verdict is positive.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, BoundedOutcome::Linearizable { .. })
    }

    /// Whether the verdict is a *proven* violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, BoundedOutcome::NotLinearizable)
    }
}

/// Checks whether `history` is linearizable with respect to the sequential
/// asset-transfer specification starting from `initial`.
///
/// # Example
///
/// ```
/// use at_model::history::{History, Operation, Response};
/// use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId};
///
/// let a = AccountId::new(0);
/// let b = AccountId::new(1);
/// let p0 = ProcessId::new(0);
/// let ledger = Ledger::new(
///     [(a, Amount::new(5)), (b, Amount::ZERO)],
///     OwnerMap::single_owner([(a, p0)]),
/// );
///
/// let mut h = History::new();
/// let t = h.invoke(p0, Operation::Transfer { source: a, destination: b, amount: Amount::new(3) });
/// h.respond(t, Response::Transfer(true));
/// let r = h.invoke(p0, Operation::Read { account: b });
/// h.respond(r, Response::Read(Amount::new(3)));
///
/// assert!(at_model::linearizable(&h, &ledger).is_linearizable());
/// ```
pub fn linearizable(history: &History, initial: &Ledger) -> CheckOutcome {
    match linearizable_bounded(history, initial, CheckBudget::UNLIMITED) {
        BoundedOutcome::Linearizable { witness } => CheckOutcome::Linearizable { witness },
        BoundedOutcome::NotLinearizable => CheckOutcome::NotLinearizable,
        // Only reachable past 128 operations, where the exhaustive
        // search is structurally unavailable (see `linearizable_bounded`).
        BoundedOutcome::BudgetExhausted { .. } => {
            panic!("history too large for the exhaustive checker")
        }
    }
}

/// [`linearizable`] with a node budget and two sequential fast paths.
///
/// Before launching the exhaustive Wing–Gong search, the checker tries
/// the *response-order* linearization: completed operations applied in
/// the order their responses appear in the history (pending operations
/// dropped). Response order always respects real-time precedence, so when
/// it is legal — which covers the overwhelmingly common case of a benign
/// execution — the history is linearizable without any search. When it
/// is not (e.g. a credit's completion was observed late but its interval
/// overlaps the spend, which live-cluster recordings under partitions
/// produce routinely), a *greedy* pass retries: one eligible operation
/// at a time, preferring response order, falling back to completing a
/// pending operation per the completion construction. Both passes only
/// ever return verified witnesses.
///
/// The exhaustive search itself tops out at 128 operations (its visited
/// set is a `u128` bitmask); larger histories that defeat both fast
/// paths yield [`BoundedOutcome::BudgetExhausted`] rather than a
/// verdict — never a false `NotLinearizable`.
pub fn linearizable_bounded(
    history: &History,
    initial: &Ledger,
    budget: CheckBudget,
) -> BoundedOutcome {
    let records = history.records();
    let n = records.len();

    if let Some(witness) = response_order_witness(&records, initial) {
        return BoundedOutcome::Linearizable { witness };
    }
    if let Some(witness) = greedy_witness(&records, initial) {
        return BoundedOutcome::Linearizable { witness };
    }
    if n > 128 {
        return BoundedOutcome::BudgetExhausted { explored: 0 };
    }

    let mut checker = Checker {
        records: &records,
        initial,
        visited: HashSet::new(),
        witness: Vec::with_capacity(n),
        nodes: 0,
        max_nodes: budget.max_nodes,
        exhausted: false,
    };
    let complete_mask: u128 = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_complete())
        .fold(0, |mask, (i, _)| mask | (1u128 << i));

    if checker.search(0, initial.clone(), complete_mask) {
        BoundedOutcome::Linearizable {
            witness: checker.witness,
        }
    } else if checker.exhausted {
        BoundedOutcome::BudgetExhausted {
            explored: checker.nodes,
        }
    } else {
        BoundedOutcome::NotLinearizable
    }
}

/// The fast path: completed operations in response order, pending ones
/// dropped. Returns the witness when that order is legal under `Δ`.
fn response_order_witness(records: &[OpRecord], initial: &Ledger) -> Option<Vec<OpId>> {
    let mut complete: Vec<&OpRecord> = records.iter().filter(|r| r.is_complete()).collect();
    complete.sort_by_key(|r| r.returned_at.expect("complete"));
    let mut state = initial.clone();
    let mut witness = Vec::with_capacity(complete.len());
    for record in complete {
        if !Checker::apply(record, &mut state) {
            return None;
        }
        witness.push(record.id);
    }
    Some(witness)
}

/// The scalable greedy pass: linearize one eligible operation at a time
/// under the Wing–Gong frontier rule (an operation is eligible while its
/// invocation does not follow the earliest response among unlinearized
/// completed operations). Completed operations are tried in response
/// order; when none applies, a pending operation is completed with the
/// response `Δ` determines (the completion construction). Sound — every
/// returned witness respects real-time precedence and the spec — but not
/// complete: a `None` is "no verdict", not a violation.
fn greedy_witness(records: &[OpRecord], initial: &Ledger) -> Option<Vec<OpId>> {
    let n = records.len();
    let mut done = vec![false; n];
    let mut completed: Vec<usize> = (0..n).filter(|&i| records[i].is_complete()).collect();
    completed.sort_by_key(|&i| records[i].returned_at.expect("complete"));
    let pending: Vec<usize> = (0..n).filter(|&i| !records[i].is_complete()).collect();
    let mut state = initial.clone();
    let mut witness = Vec::with_capacity(completed.len());
    let mut next_completed = 0;
    while next_completed < completed.len() {
        // `completed` is sorted by response position, so the first
        // undone entry carries the frontier (earliest pending return).
        while next_completed < completed.len() && done[completed[next_completed]] {
            next_completed += 1;
        }
        if next_completed >= completed.len() {
            break;
        }
        let min_return = records[completed[next_completed]]
            .returned_at
            .expect("complete");
        let mut progressed = false;
        for &i in &completed[next_completed..] {
            if done[i] || records[i].invoked_at > min_return {
                continue;
            }
            let mut next_state = state.clone();
            if Checker::apply(&records[i], &mut next_state) {
                state = next_state;
                done[i] = true;
                witness.push(records[i].id);
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        // No completed operation applies: complete one pending operation
        // (its Δ-determined response can unblock a later observation).
        for &i in &pending {
            if done[i] || records[i].invoked_at > min_return {
                continue;
            }
            let mut next_state = state.clone();
            if Checker::apply(&records[i], &mut next_state) {
                state = next_state;
                done[i] = true;
                witness.push(records[i].id);
                progressed = true;
                break;
            }
        }
        if !progressed {
            return None;
        }
    }
    Some(witness)
}

struct Checker<'a> {
    records: &'a [OpRecord],
    initial: &'a Ledger,
    /// Visited `(linearized-set, state-fingerprint)` configurations.
    visited: HashSet<(u128, Vec<u64>)>,
    witness: Vec<OpId>,
    /// Nodes expanded so far.
    nodes: usize,
    /// Node budget ([`CheckBudget::max_nodes`]).
    max_nodes: usize,
    /// Whether the budget cut the search short.
    exhausted: bool,
}

impl Checker<'_> {
    /// Depth-first search for a legal linearization.
    ///
    /// `done` is the bitset of linearized operations; `state` the ledger
    /// after applying them; `complete_mask` the bitset of operations that
    /// have recorded responses.
    fn search(&mut self, done: u128, state: Ledger, complete_mask: u128) -> bool {
        // Success: every completed operation has been linearized; pending
        // ones may be dropped (removed in the completion H̄).
        if done & complete_mask == complete_mask {
            return true;
        }

        if self.nodes >= self.max_nodes {
            self.exhausted = true;
            return false;
        }
        self.nodes += 1;

        let fingerprint: Vec<u64> = state.iter().map(|(_, x)| x.units()).collect();
        if !self.visited.insert((done, fingerprint)) {
            return false;
        }

        // Wing–Gong minimality: the next linearized operation must be
        // invoked before the earliest response among non-linearized
        // completed operations, otherwise that earlier operation precedes
        // it in real time.
        let min_return = self
            .records
            .iter()
            .enumerate()
            .filter(|(i, r)| done & (1 << *i) == 0 && r.is_complete())
            .filter_map(|(_, r)| r.returned_at)
            .min()
            .unwrap_or(usize::MAX);

        for (i, record) in self.records.iter().enumerate() {
            if done & (1 << i) != 0 || record.invoked_at > min_return {
                continue;
            }
            let mut next_state = state.clone();
            if !Self::apply(record, &mut next_state) {
                continue;
            }
            self.witness.push(record.id);
            if self.search(done | (1 << i), next_state, complete_mask) {
                return true;
            }
            self.witness.pop();
        }
        false
    }

    /// Applies `record` to `state` per `Δ`; returns `false` when the
    /// recorded response contradicts the specification at this point.
    fn apply(record: &OpRecord, state: &mut Ledger) -> bool {
        match record.op {
            Operation::Transfer {
                source,
                destination,
                amount,
            } => {
                let outcome = state
                    .transfer(record.process, source, destination, amount)
                    .is_ok();
                match record.response {
                    Some(Response::Transfer(recorded)) => outcome == recorded,
                    Some(_) => false,
                    // Pending transfer: Δ determines the response.
                    None => true,
                }
            }
            Operation::Read { account } => {
                let balance = state.read(account);
                match record.response {
                    Some(Response::Read(recorded)) => balance == recorded,
                    Some(_) => false,
                    None => true,
                }
            }
        }
    }

    #[allow(dead_code)]
    fn initial(&self) -> &Ledger {
        self.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AccountId, Amount, ProcessId};

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn amt(x: u64) -> Amount {
        Amount::new(x)
    }

    fn transfer(src: u32, dst: u32, x: u64) -> Operation {
        Operation::Transfer {
            source: a(src),
            destination: a(dst),
            amount: amt(x),
        }
    }

    fn read(acct: u32) -> Operation {
        Operation::Read { account: a(acct) }
    }

    /// Two accounts, 10 units each, account i owned by process i.
    fn ledger() -> Ledger {
        Ledger::uniform(2, amt(10))
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = History::new();
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn sequential_legal_history_passes() {
        let mut h = History::new();
        let t = h.invoke(p(0), transfer(0, 1, 4));
        h.respond(t, Response::Transfer(true));
        let r = h.invoke(p(1), read(1));
        h.respond(r, Response::Read(amt(14)));
        let outcome = linearizable(&h, &ledger());
        assert!(outcome.is_linearizable());
        if let CheckOutcome::Linearizable { witness } = outcome {
            assert_eq!(witness.len(), 2);
        }
    }

    #[test]
    fn wrong_read_value_fails() {
        let mut h = History::new();
        let t = h.invoke(p(0), transfer(0, 1, 4));
        h.respond(t, Response::Transfer(true));
        let r = h.invoke(p(1), read(1));
        h.respond(r, Response::Read(amt(99)));
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn double_spend_history_fails() {
        // p0 has 10 units but two sequential transfers of 8 both succeed:
        // impossible in any linearization.
        let mut h = History::new();
        let t1 = h.invoke(p(0), transfer(0, 1, 8));
        h.respond(t1, Response::Transfer(true));
        let t2 = h.invoke(p(0), transfer(0, 1, 8));
        h.respond(t2, Response::Transfer(true));
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn concurrent_reads_may_reorder() {
        // read(0) overlapping a transfer may see either 10 or 6.
        for observed in [10u64, 6] {
            let mut h = History::new();
            let t = h.invoke(p(0), transfer(0, 1, 4));
            let r = h.invoke(p(1), read(0));
            h.respond(r, Response::Read(amt(observed)));
            h.respond(t, Response::Transfer(true));
            assert!(
                linearizable(&h, &ledger()).is_linearizable(),
                "observed {observed}"
            );
        }
    }

    #[test]
    fn non_overlapping_read_cannot_see_stale_value() {
        // The read starts strictly after the successful transfer returned,
        // so it must observe the debited balance.
        let mut h = History::new();
        let t = h.invoke(p(0), transfer(0, 1, 4));
        h.respond(t, Response::Transfer(true));
        let r = h.invoke(p(1), read(0));
        h.respond(r, Response::Read(amt(10))); // stale!
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn failed_transfer_requires_insufficient_balance() {
        // Balance is 10; a failed transfer of 5 has no justification.
        let mut h = History::new();
        let t = h.invoke(p(0), transfer(0, 1, 5));
        h.respond(t, Response::Transfer(false));
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn failed_transfer_justified_by_earlier_spend() {
        let mut h = History::new();
        let t1 = h.invoke(p(0), transfer(0, 1, 8));
        h.respond(t1, Response::Transfer(true));
        let t2 = h.invoke(p(0), transfer(0, 1, 5));
        h.respond(t2, Response::Transfer(false));
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn non_owner_transfer_must_fail() {
        let mut h = History::new();
        // p1 debiting account 0 succeeds — violates Δ.
        let t = h.invoke(p(1), transfer(0, 1, 1));
        h.respond(t, Response::Transfer(true));
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);

        // The failing version is legal.
        let mut h = History::new();
        let t = h.invoke(p(1), transfer(0, 1, 1));
        h.respond(t, Response::Transfer(false));
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn pending_transfer_may_be_dropped() {
        let mut h = History::new();
        let _pending = h.invoke(p(0), transfer(0, 1, 4));
        let r = h.invoke(p(1), read(0));
        h.respond(r, Response::Read(amt(10)));
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn pending_transfer_may_take_effect() {
        // The pending transfer's effect is visible to a later read: the
        // checker must linearize it rather than drop it.
        let mut h = History::new();
        let _pending = h.invoke(p(0), transfer(0, 1, 4));
        let r = h.invoke(p(1), read(0));
        h.respond(r, Response::Read(amt(6)));
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn incoming_funds_enable_larger_transfer() {
        // p1 receives 10 from p0 and then sends 15: legal only in the order
        // t0 before t1. Both overlap, so the checker must find that order.
        let mut h = History::new();
        let t0 = h.invoke(p(0), transfer(0, 1, 10));
        let t1 = h.invoke(p(1), transfer(1, 0, 15));
        h.respond(t0, Response::Transfer(true));
        h.respond(t1, Response::Transfer(true));
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn real_time_order_constrains_dependent_transfers() {
        // t1 (needing t0's funds) returns before t0 is invoked: illegal.
        let mut h = History::new();
        let t1 = h.invoke(p(1), transfer(1, 0, 15));
        h.respond(t1, Response::Transfer(true));
        let t0 = h.invoke(p(0), transfer(0, 1, 10));
        h.respond(t0, Response::Transfer(true));
        assert_eq!(linearizable(&h, &ledger()), CheckOutcome::NotLinearizable);
    }

    #[test]
    fn witness_is_a_legal_order() {
        let mut h = History::new();
        let t0 = h.invoke(p(0), transfer(0, 1, 10));
        let t1 = h.invoke(p(1), transfer(1, 0, 15));
        h.respond(t0, Response::Transfer(true));
        h.respond(t1, Response::Transfer(true));
        match linearizable(&h, &ledger()) {
            CheckOutcome::Linearizable { witness } => {
                // t0 must come first: t1 needs the incoming 10.
                assert_eq!(witness, vec![t0, t1]);
            }
            CheckOutcome::NotLinearizable => panic!("expected linearizable"),
        }
    }

    #[test]
    fn fast_path_handles_sequential_histories_without_search() {
        // A long, strictly sequential history: the response-order fast
        // path must certify it even under a zero-node search budget.
        let mut h = History::new();
        for i in 0..30 {
            let t = h.invoke(p(i % 2), transfer(i % 2, (i + 1) % 2, 1));
            h.respond(t, Response::Transfer(true));
        }
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(0));
        assert!(outcome.is_linearizable(), "{outcome:?}");
        if let BoundedOutcome::Linearizable { witness } = outcome {
            assert_eq!(witness.len(), 30);
        }
    }

    #[test]
    fn bounded_check_reports_exhaustion_not_violation() {
        // Two pending transfers, of which only the *second* (in stream
        // order) explains the completed read: the greedy pass completes
        // the first one, blocks, and gives no verdict; response order is
        // illegal outright. The search must run — and a one-node budget
        // cannot finish it. The verdict must be BudgetExhausted, never a
        // spurious NotLinearizable.
        let mut h = History::new();
        let _t1 = h.invoke(p(0), transfer(0, 1, 4));
        let _t2 = h.invoke(p(0), transfer(0, 1, 3));
        let r = h.invoke(p(1), read(1));
        h.respond(r, Response::Read(amt(13)));
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(1));
        assert!(matches!(
            outcome,
            BoundedOutcome::BudgetExhausted { explored: 1 }
        ));
        assert!(!outcome.is_violation());
        // With room to search, the same history verifies.
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(10_000));
        assert!(outcome.is_linearizable());
    }

    #[test]
    fn bounded_check_agrees_with_exhaustive_on_violations() {
        let mut h = History::new();
        let t1 = h.invoke(p(0), transfer(0, 1, 8));
        h.respond(t1, Response::Transfer(true));
        let t2 = h.invoke(p(0), transfer(0, 1, 8));
        h.respond(t2, Response::Transfer(true));
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(100_000));
        assert_eq!(outcome, BoundedOutcome::NotLinearizable);
        assert!(outcome.is_violation());
    }

    #[test]
    fn fast_path_is_real_time_sound() {
        // Response order would be unsound if it ignored a pending op
        // whose effect was observed: the fast path must fail over to the
        // full search here (read sees the pending transfer's debit).
        let mut h = History::new();
        let _pending = h.invoke(p(0), transfer(0, 1, 4));
        let r = h.invoke(p(1), read(0));
        h.respond(r, Response::Read(amt(6)));
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::UNLIMITED);
        assert!(outcome.is_linearizable());
    }

    #[test]
    fn many_concurrent_reads_scale() {
        let mut h = History::new();
        let mut ids = Vec::new();
        for i in 0..20 {
            ids.push(h.invoke(p(i % 2), read(0)));
        }
        for id in ids {
            h.respond(id, Response::Read(amt(10)));
        }
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn greedy_pass_handles_out_of_response_order_credits() {
        // The live-cluster shape: p0's credit to account 1 *completes*
        // after p1's dependent spend does (their intervals overlap), so
        // response order applies the spend first and fails. The greedy
        // pass must reorder within the frontier — no exhaustive search
        // required, which matters past 128 operations (here it's just
        // exercised directly).
        let mut h = History::new();
        let credit = h.invoke(p(0), transfer(0, 1, 8)); // 0: 10 -> 2, 1: 10 -> 18
        let spend = h.invoke(p(1), transfer(1, 0, 15)); // needs the credit
        h.respond(spend, Response::Transfer(true));
        h.respond(credit, Response::Transfer(true));
        let records = h.records();
        assert!(response_order_witness(&records, &ledger()).is_none());
        let witness = greedy_witness(&records, &ledger()).expect("greedy finds the reorder");
        assert_eq!(witness, vec![credit, spend]);
        assert!(linearizable(&h, &ledger()).is_linearizable());
    }

    #[test]
    fn histories_beyond_128_operations_are_checked_not_panicked() {
        // 200 sequential transfers shuttling one unit back and forth,
        // each observed by its response — far past the exhaustive
        // search's bitmask, handled by the fast paths.
        let mut h = History::new();
        for i in 0..200 {
            let (src, dst) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
            let t = h.invoke(p(src), transfer(src, dst, 1));
            h.respond(t, Response::Transfer(true));
        }
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(10));
        assert!(outcome.is_linearizable());

        // A large history neither fast path certifies yields "no
        // verdict" — never a false violation, never a panic.
        let mut h = History::new();
        for _ in 0..130 {
            let t = h.invoke(p(0), transfer(0, 1, 1));
            h.respond(t, Response::Transfer(true));
        }
        let r = h.invoke(p(0), read(0));
        h.respond(r, Response::Read(amt(9_999))); // impossible balance
        let outcome = linearizable_bounded(&h, &ledger(), CheckBudget::nodes(10));
        assert!(matches!(outcome, BoundedOutcome::BudgetExhausted { .. }));
    }
}
