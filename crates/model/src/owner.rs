//! The owner map `µ : A → 2^Π`.
//!
//! Section 2.2 of the paper associates each account with the set of
//! processes allowed to debit it. Section 4 generalizes from the
//! single-owner case (`|µ(a)| ≤ 1`) to the *k-shared* case
//! (`max_a |µ(a)| = k`), which is precisely the consensus number of the
//! resulting object.

use crate::ids::{AccountId, ProcessId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The owner map `µ : A → 2^Π`.
///
/// # Example
///
/// ```
/// use at_model::{AccountId, OwnerMap, ProcessId};
///
/// let a = AccountId::new(0);
/// let b = AccountId::new(1);
/// let owners = OwnerMap::builder()
///     .account(a, [ProcessId::new(0)])
///     .account(b, [ProcessId::new(1), ProcessId::new(2)])
///     .build();
///
/// assert!(owners.is_owner(ProcessId::new(0), a));
/// assert!(!owners.is_owner(ProcessId::new(0), b));
/// assert_eq!(owners.sharedness(), 2); // the object is 2-shared
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OwnerMap {
    owners: BTreeMap<AccountId, BTreeSet<ProcessId>>,
}

impl OwnerMap {
    /// Creates an empty owner map (no accounts).
    pub fn new() -> Self {
        OwnerMap::default()
    }

    /// Starts building an owner map account by account.
    pub fn builder() -> OwnerMapBuilder {
        OwnerMapBuilder {
            map: OwnerMap::new(),
        }
    }

    /// Convenience constructor for the Nakamoto setting of Section 2.2:
    /// every account has exactly one owner.
    pub fn single_owner<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (AccountId, ProcessId)>,
    {
        let mut map = OwnerMap::new();
        for (account, process) in pairs {
            map.owners.entry(account).or_default().insert(process);
        }
        map
    }

    /// Convenience constructor for the common benchmark topology: `n`
    /// processes, one account each, account `i` owned by process `i`.
    pub fn one_account_per_process(n: usize) -> Self {
        OwnerMap::single_owner((0..n as u32).map(|i| (AccountId::new(i), ProcessId::new(i))))
    }

    /// Adds `process` as an owner of `account`.
    pub fn add_owner(&mut self, account: AccountId, process: ProcessId) {
        self.owners.entry(account).or_default().insert(process);
    }

    /// Registers `account` with no owners (it can only receive).
    pub fn add_unowned(&mut self, account: AccountId) {
        self.owners.entry(account).or_default();
    }

    /// Returns `true` when `process ∈ µ(account)`.
    ///
    /// An account absent from the map has `µ(a) = ∅`, so this returns
    /// `false` for unknown accounts.
    pub fn is_owner(&self, process: ProcessId, account: AccountId) -> bool {
        self.owners
            .get(&account)
            .is_some_and(|set| set.contains(&process))
    }

    /// The owner set `µ(account)`; empty for unknown accounts.
    pub fn owners(&self, account: AccountId) -> impl Iterator<Item = ProcessId> + '_ {
        self.owners
            .get(&account)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// The number of owners `|µ(account)|`.
    pub fn owner_count(&self, account: AccountId) -> usize {
        self.owners.get(&account).map_or(0, BTreeSet::len)
    }

    /// Whether the account is registered in the map at all.
    pub fn contains_account(&self, account: AccountId) -> bool {
        self.owners.contains_key(&account)
    }

    /// Iterates over all registered accounts in index order.
    pub fn accounts(&self) -> impl Iterator<Item = AccountId> + '_ {
        self.owners.keys().copied()
    }

    /// Number of registered accounts.
    pub fn account_count(&self) -> usize {
        self.owners.len()
    }

    /// The *sharedness* `k = max_a |µ(a)|` of the asset-transfer object.
    ///
    /// Theorem 2 of the paper: this value is exactly the consensus number
    /// of the object.
    pub fn sharedness(&self) -> usize {
        self.owners.values().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Accounts the given process owns, in index order.
    pub fn accounts_owned_by(&self, process: ProcessId) -> impl Iterator<Item = AccountId> + '_ {
        self.owners
            .iter()
            .filter(move |(_, set)| set.contains(&process))
            .map(|(account, _)| *account)
    }
}

impl fmt::Display for OwnerMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "µ{{")?;
        for (i, (account, set)) in self.owners.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{account}→{{")?;
            for (j, p) in set.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`OwnerMap`] ([C-BUILDER]).
#[derive(Clone, Debug, Default)]
pub struct OwnerMapBuilder {
    map: OwnerMap,
}

impl OwnerMapBuilder {
    /// Registers `account` with the given owner set.
    pub fn account<I>(mut self, account: AccountId, owners: I) -> Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let set = self.map.owners.entry(account).or_default();
        set.extend(owners);
        self
    }

    /// Finishes building the owner map.
    pub fn build(self) -> OwnerMap {
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_owner_map() {
        let m = OwnerMap::single_owner([(a(0), p(0)), (a(1), p(1))]);
        assert!(m.is_owner(p(0), a(0)));
        assert!(!m.is_owner(p(1), a(0)));
        assert_eq!(m.sharedness(), 1);
        assert_eq!(m.account_count(), 2);
    }

    #[test]
    fn unknown_account_has_no_owners() {
        let m = OwnerMap::new();
        assert!(!m.is_owner(p(0), a(9)));
        assert_eq!(m.owner_count(a(9)), 0);
        assert_eq!(m.owners(a(9)).count(), 0);
        assert!(!m.contains_account(a(9)));
        assert_eq!(m.sharedness(), 0);
    }

    #[test]
    fn k_shared_map_sharedness() {
        let m = OwnerMap::builder()
            .account(a(0), [p(0)])
            .account(a(1), [p(0), p(1), p(2)])
            .account(a(2), [p(1), p(3)])
            .build();
        assert_eq!(m.sharedness(), 3);
        assert_eq!(m.owner_count(a(1)), 3);
        let owners: Vec<_> = m.owners(a(1)).collect();
        assert_eq!(owners, vec![p(0), p(1), p(2)]);
    }

    #[test]
    fn unowned_account_can_only_receive() {
        let mut m = OwnerMap::new();
        m.add_unowned(a(5));
        assert!(m.contains_account(a(5)));
        assert_eq!(m.owner_count(a(5)), 0);
    }

    #[test]
    fn accounts_owned_by_process() {
        let m = OwnerMap::builder()
            .account(a(0), [p(0)])
            .account(a(1), [p(0), p(1)])
            .account(a(2), [p(1)])
            .build();
        let mine: Vec<_> = m.accounts_owned_by(p(0)).collect();
        assert_eq!(mine, vec![a(0), a(1)]);
    }

    #[test]
    fn one_account_per_process_topology() {
        let m = OwnerMap::one_account_per_process(4);
        assert_eq!(m.account_count(), 4);
        assert_eq!(m.sharedness(), 1);
        for i in 0..4 {
            assert!(m.is_owner(p(i), a(i)));
        }
    }

    #[test]
    fn add_owner_is_idempotent() {
        let mut m = OwnerMap::new();
        m.add_owner(a(0), p(1));
        m.add_owner(a(0), p(1));
        assert_eq!(m.owner_count(a(0)), 1);
    }

    #[test]
    fn display_is_readable() {
        let m = OwnerMap::builder().account(a(0), [p(0), p(1)]).build();
        assert_eq!(m.to_string(), "µ{acct0→{p0,p1}}");
    }

    #[test]
    fn accounts_iterate_in_order() {
        let m = OwnerMap::single_owner([(a(2), p(0)), (a(0), p(0)), (a(1), p(0))]);
        let accounts: Vec<_> = m.accounts().collect();
        assert_eq!(accounts, vec![a(0), a(1), a(2)]);
    }
}
