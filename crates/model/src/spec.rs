//! The sequential specification `Δ` as an executable reference model.
//!
//! [`Ledger`] is a direct transliteration of the asset-transfer object type
//! of Section 2.2: a state `q : A → ℕ` together with the transition
//! relation `Δ`. Implementations (shared-memory or message-passing) are
//! *correct* exactly when their concurrent histories linearize to a
//! sequential history that this model accepts — which is what the
//! [`crate::check`] module verifies.

use crate::error::TransferError;
use crate::ids::{AccountId, Amount, ProcessId};
use crate::owner::OwnerMap;
use crate::transfer::Transfer;
use std::collections::BTreeMap;
use std::fmt;

/// The sequential asset-transfer object: state `q : A → ℕ` plus the owner
/// map `µ`, with transitions per `Δ`.
///
/// # Example
///
/// ```
/// use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId, TransferError};
///
/// let a = AccountId::new(0);
/// let b = AccountId::new(1);
/// let p = ProcessId::new(0);
/// let mut ledger = Ledger::new(
///     [(a, Amount::new(5)), (b, Amount::ZERO)],
///     OwnerMap::single_owner([(a, p), (b, ProcessId::new(1))]),
/// );
///
/// assert!(ledger.transfer(p, a, b, Amount::new(5)).is_ok());
/// let err = ledger.transfer(p, a, b, Amount::new(1)).unwrap_err();
/// assert!(matches!(err, TransferError::InsufficientBalance { .. }));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Ledger {
    balances: BTreeMap<AccountId, Amount>,
    owners: OwnerMap,
}

impl Ledger {
    /// Creates a ledger with the given initial balances `q0` and owner map.
    ///
    /// Accounts mentioned in the owner map but not in `initial` start at
    /// zero balance.
    pub fn new<I>(initial: I, owners: OwnerMap) -> Self
    where
        I: IntoIterator<Item = (AccountId, Amount)>,
    {
        let mut balances: BTreeMap<AccountId, Amount> = initial.into_iter().collect();
        for account in owners.accounts() {
            balances.entry(account).or_insert(Amount::ZERO);
        }
        Ledger { balances, owners }
    }

    /// Creates the standard benchmark ledger: `n` processes, account `i`
    /// owned by process `i`, every account starting with `initial` units.
    pub fn uniform(n: usize, initial: Amount) -> Self {
        let owners = OwnerMap::one_account_per_process(n);
        let balances = AccountId::all(n).map(|a| (a, initial));
        Ledger::new(balances, owners)
    }

    /// The owner map `µ`.
    pub fn owners(&self) -> &OwnerMap {
        &self.owners
    }

    /// `read(a)`: the balance of `a`, zero for unknown accounts.
    pub fn read(&self, account: AccountId) -> Amount {
        self.balances.get(&account).copied().unwrap_or(Amount::ZERO)
    }

    /// Whether the account exists in the state.
    pub fn contains_account(&self, account: AccountId) -> bool {
        self.balances.contains_key(&account)
    }

    /// Iterates over `(account, balance)` pairs in account order.
    pub fn iter(&self) -> impl Iterator<Item = (AccountId, Amount)> + '_ {
        self.balances.iter().map(|(a, x)| (*a, *x))
    }

    /// The sum of all balances — invariant under transfers (conservation).
    pub fn total_supply(&self) -> Amount {
        self.balances.values().copied().sum()
    }

    /// `transfer(a, b, x)` invoked by `process`, per `Δ`:
    ///
    /// * succeeds iff `process ∈ µ(a)` and `q(a) ≥ x`, moving `x` from `a`
    ///   to `b`;
    /// * otherwise leaves the state unchanged and reports why.
    ///
    /// # Errors
    ///
    /// [`TransferError::NotOwner`], [`TransferError::UnknownAccount`], or
    /// [`TransferError::InsufficientBalance`] — all of which correspond to
    /// the `false` response of the paper's type.
    pub fn transfer(
        &mut self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> Result<(), TransferError> {
        self.check_transfer(process, source, destination, amount)?;
        self.apply_unchecked(source, destination, amount);
        Ok(())
    }

    /// Validates a transfer against `Δ` without applying it.
    ///
    /// # Errors
    ///
    /// Same as [`Ledger::transfer`].
    pub fn check_transfer(
        &self,
        process: ProcessId,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> Result<(), TransferError> {
        if !self.balances.contains_key(&source) {
            return Err(TransferError::UnknownAccount { account: source });
        }
        if !self.balances.contains_key(&destination) {
            return Err(TransferError::UnknownAccount {
                account: destination,
            });
        }
        if !self.owners.is_owner(process, source) {
            return Err(TransferError::NotOwner {
                process,
                account: source,
            });
        }
        let balance = self.read(source);
        if balance < amount {
            return Err(TransferError::InsufficientBalance {
                account: source,
                balance,
                requested: amount,
            });
        }
        Ok(())
    }

    /// Applies a [`Transfer`] record, validating ownership via the record's
    /// `originator` field.
    ///
    /// # Errors
    ///
    /// Same as [`Ledger::transfer`].
    pub fn apply(&mut self, tx: &Transfer) -> Result<(), TransferError> {
        self.transfer(tx.originator, tx.source, tx.destination, tx.amount)
    }

    /// Moves funds without an ownership check — used internally by the
    /// pre-validated multi-transfer extension (`crate::multi`), never
    /// exposed publicly.
    ///
    /// # Errors
    ///
    /// [`TransferError::InsufficientBalance`] or
    /// [`TransferError::UnknownAccount`] when the move is impossible.
    pub(crate) fn force_move(
        &mut self,
        source: AccountId,
        destination: AccountId,
        amount: Amount,
    ) -> Result<(), TransferError> {
        if !self.balances.contains_key(&source) {
            return Err(TransferError::UnknownAccount { account: source });
        }
        if !self.balances.contains_key(&destination) {
            return Err(TransferError::UnknownAccount {
                account: destination,
            });
        }
        let balance = self.read(source);
        if balance < amount {
            return Err(TransferError::InsufficientBalance {
                account: source,
                balance,
                requested: amount,
            });
        }
        self.apply_unchecked(source, destination, amount);
        Ok(())
    }

    fn apply_unchecked(&mut self, source: AccountId, destination: AccountId, amount: Amount) {
        // Self-transfers leave q unchanged, matching Δ where
        // q'(a) = q(a) - x + x.
        if source == destination {
            return;
        }
        let debited = self
            .read(source)
            .checked_sub(amount)
            .expect("balance checked above");
        let credited = self
            .read(destination)
            .checked_add(amount)
            .expect("total supply fits in u64");
        self.balances.insert(source, debited);
        self.balances.insert(destination, credited);
    }
}

impl fmt::Debug for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.balances.iter().map(|(a, x)| (a, x.units())))
            .finish()
    }
}

/// Computes `balance(a, S)` as in Figure 1: initial balance plus the sum of
/// incoming successful transfers minus the sum of outgoing successful
/// transfers found in `transfers`.
///
/// The caller is responsible for `transfers` containing only *successful*
/// transfers (failed transfers do not change state).
///
/// Returns `None` when the outgoing sum exceeds initial + incoming, which a
/// correct implementation never produces; callers treat `None` as a
/// detected safety violation.
pub fn balance_from_transfers<'a, I>(
    account: AccountId,
    initial: Amount,
    transfers: I,
) -> Option<Amount>
where
    I: IntoIterator<Item = &'a Transfer>,
{
    let mut incoming = Amount::ZERO;
    let mut outgoing = Amount::ZERO;
    for tx in transfers {
        // Self-transfers add to both sums and cancel out, matching Δ.
        if tx.is_incoming_for(account) {
            incoming = incoming.checked_add(tx.amount)?;
        }
        if tx.is_outgoing_for(account) {
            outgoing = outgoing.checked_add(tx.amount)?;
        }
    }
    initial.checked_add(incoming)?.checked_sub(outgoing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SeqNo;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn amt(x: u64) -> Amount {
        Amount::new(x)
    }

    fn two_account_ledger() -> Ledger {
        Ledger::new(
            [(a(0), amt(10)), (a(1), amt(5))],
            OwnerMap::single_owner([(a(0), p(0)), (a(1), p(1))]),
        )
    }

    #[test]
    fn successful_transfer_moves_funds() {
        let mut l = two_account_ledger();
        l.transfer(p(0), a(0), a(1), amt(4)).unwrap();
        assert_eq!(l.read(a(0)), amt(6));
        assert_eq!(l.read(a(1)), amt(9));
    }

    #[test]
    fn non_owner_cannot_debit() {
        let mut l = two_account_ledger();
        let err = l.transfer(p(1), a(0), a(1), amt(1)).unwrap_err();
        assert!(matches!(err, TransferError::NotOwner { .. }));
        // State unchanged.
        assert_eq!(l.read(a(0)), amt(10));
        assert_eq!(l.read(a(1)), amt(5));
    }

    #[test]
    fn insufficient_balance_rejected() {
        let mut l = two_account_ledger();
        let err = l.transfer(p(0), a(0), a(1), amt(11)).unwrap_err();
        assert!(matches!(err, TransferError::InsufficientBalance { .. }));
        assert_eq!(l.read(a(0)), amt(10));
    }

    #[test]
    fn exact_balance_transfer_succeeds() {
        let mut l = two_account_ledger();
        l.transfer(p(0), a(0), a(1), amt(10)).unwrap();
        assert_eq!(l.read(a(0)), amt(0));
        assert_eq!(l.read(a(1)), amt(15));
    }

    #[test]
    fn zero_amount_transfer_succeeds() {
        let mut l = two_account_ledger();
        l.transfer(p(0), a(0), a(1), amt(0)).unwrap();
        assert_eq!(l.read(a(0)), amt(10));
        assert_eq!(l.read(a(1)), amt(5));
    }

    #[test]
    fn unknown_accounts_rejected() {
        let mut l = two_account_ledger();
        assert!(matches!(
            l.transfer(p(0), a(7), a(1), amt(1)),
            Err(TransferError::UnknownAccount { .. })
        ));
        assert!(matches!(
            l.transfer(p(0), a(0), a(7), amt(1)),
            Err(TransferError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn self_transfer_is_noop() {
        let mut l = Ledger::new([(a(0), amt(10))], OwnerMap::single_owner([(a(0), p(0))]));
        l.transfer(p(0), a(0), a(0), amt(7)).unwrap();
        assert_eq!(l.read(a(0)), amt(10));
        // But still requires sufficient balance per Δ: q(a) ≥ x.
        assert!(l.transfer(p(0), a(0), a(0), amt(11)).is_err());
    }

    #[test]
    fn conservation_of_total_supply() {
        let mut l = Ledger::uniform(4, amt(100));
        assert_eq!(l.total_supply(), amt(400));
        l.transfer(p(0), a(0), a(3), amt(33)).unwrap();
        l.transfer(p(3), a(3), a(1), amt(133)).unwrap();
        assert_eq!(l.total_supply(), amt(400));
    }

    #[test]
    fn read_unknown_account_is_zero() {
        let l = two_account_ledger();
        assert_eq!(l.read(a(9)), Amount::ZERO);
        assert!(!l.contains_account(a(9)));
    }

    #[test]
    fn owner_map_accounts_get_default_zero_balance() {
        let owners = OwnerMap::single_owner([(a(0), p(0)), (a(1), p(1))]);
        let l = Ledger::new([(a(0), amt(3))], owners);
        assert!(l.contains_account(a(1)));
        assert_eq!(l.read(a(1)), Amount::ZERO);
    }

    #[test]
    fn apply_transfer_record() {
        let mut l = two_account_ledger();
        let tx = Transfer::new(a(0), a(1), amt(2), p(0), SeqNo::new(1));
        l.apply(&tx).unwrap();
        assert_eq!(l.read(a(1)), amt(7));

        // Forged originator is rejected.
        let forged = Transfer::new(a(1), a(0), amt(1), p(0), SeqNo::new(2));
        assert!(matches!(
            l.apply(&forged),
            Err(TransferError::NotOwner { .. })
        ));
    }

    #[test]
    fn balance_from_transfer_sets() {
        let txs = vec![
            Transfer::new(a(0), a(1), amt(4), p(0), SeqNo::new(1)),
            Transfer::new(a(1), a(0), amt(1), p(1), SeqNo::new(1)),
            Transfer::new(a(2), a(1), amt(10), p(2), SeqNo::new(1)),
        ];
        assert_eq!(
            balance_from_transfers(a(0), amt(10), &txs),
            Some(amt(10 - 4 + 1))
        );
        assert_eq!(
            balance_from_transfers(a(1), amt(0), &txs),
            Some(amt(4 - 1 + 10))
        );
        // Outgoing exceeding initial+incoming signals a safety violation.
        assert_eq!(balance_from_transfers(a(2), amt(5), &txs), None);
    }

    #[test]
    fn iter_lists_accounts_in_order() {
        let l = two_account_ledger();
        let entries: Vec<_> = l.iter().collect();
        assert_eq!(entries, vec![(a(0), amt(10)), (a(1), amt(5))]);
    }

    #[test]
    fn debug_shows_balances() {
        let l = two_account_ledger();
        let s = format!("{l:?}");
        assert!(s.contains("acct0"));
        assert!(s.contains("10"));
    }
}
