//! Concurrent operation histories.
//!
//! A [`History`] is the sequence of invocation and response events produced
//! by an execution, as defined in Section 2.1 of the paper. Test harnesses
//! record histories through a thread-safe [`Recorder`] and then check them
//! against the sequential specification with [`crate::check::linearizable`].

use crate::ids::{AccountId, Amount, ProcessId};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Identifier of an operation within one [`History`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The operation's index in invocation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An invoked operation of the asset-transfer type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operation {
    /// `transfer(source, destination, amount)`.
    Transfer {
        /// Source account.
        source: AccountId,
        /// Destination account.
        destination: AccountId,
        /// Amount to move.
        amount: Amount,
    },
    /// `read(account)`.
    Read {
        /// The account whose balance is read.
        account: AccountId,
    },
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Transfer {
                source,
                destination,
                amount,
            } => write!(f, "transfer({source},{destination},{amount})"),
            Operation::Read { account } => write!(f, "read({account})"),
        }
    }
}

/// The response of an operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Response {
    /// Response of a transfer: `true` for success, `false` for failure.
    Transfer(bool),
    /// Response of a read: the observed balance.
    Read(Amount),
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Transfer(ok) => write!(f, "{ok}"),
            Response::Read(x) => write!(f, "{x}"),
        }
    }
}

/// A single event in a history: an invocation or a response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// Process `process` invoked operation `op` (identified by `id`).
    Invoke {
        /// The operation identifier.
        id: OpId,
        /// The invoking process.
        process: ProcessId,
        /// The invoked operation.
        op: Operation,
    },
    /// The operation identified by `id` returned `response`.
    Return {
        /// The operation identifier.
        id: OpId,
        /// The returned response.
        response: Response,
    },
}

/// One operation extracted from a history, with its interval endpoints.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// The operation identifier.
    pub id: OpId,
    /// The invoking process.
    pub process: ProcessId,
    /// The invoked operation.
    pub op: Operation,
    /// Index of the invocation event in the history.
    pub invoked_at: usize,
    /// Index of the response event, `None` while pending.
    pub returned_at: Option<usize>,
    /// The recorded response, `None` while pending.
    pub response: Option<Response>,
}

impl OpRecord {
    /// Whether the operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.response.is_some()
    }
}

/// A recorded history of invocations and responses.
///
/// Event order in the underlying vector *is* the real-time order used for
/// the precedence relation `≺_H`.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<Event>,
    op_count: u32,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records an invocation, returning the fresh operation identifier.
    pub fn invoke(&mut self, process: ProcessId, op: Operation) -> OpId {
        let id = OpId(self.op_count);
        self.op_count += 1;
        self.events.push(Event::Invoke { id, process, op });
        id
    }

    /// Records the response of a previously invoked operation.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by [`History::invoke`] on this
    /// history (a harness bug).
    pub fn respond(&mut self, id: OpId, response: Response) {
        assert!(id.0 < self.op_count, "response for unknown operation {id}");
        self.events.push(Event::Return { id, response });
    }

    /// The events in real-time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of invoked operations (complete or pending).
    pub fn op_count(&self) -> usize {
        self.op_count as usize
    }

    /// Whether every invocation has a matching response.
    pub fn is_complete(&self) -> bool {
        self.records().iter().all(OpRecord::is_complete)
    }

    /// Extracts one [`OpRecord`] per invoked operation, in [`OpId`] order.
    pub fn records(&self) -> Vec<OpRecord> {
        let mut records: Vec<Option<OpRecord>> = vec![None; self.op_count as usize];
        for (index, event) in self.events.iter().enumerate() {
            match *event {
                Event::Invoke { id, process, op } => {
                    records[id.index()] = Some(OpRecord {
                        id,
                        process,
                        op,
                        invoked_at: index,
                        returned_at: None,
                        response: None,
                    });
                }
                Event::Return { id, response } => {
                    let record = records[id.index()]
                        .as_mut()
                        .expect("return precedes invocation");
                    record.returned_at = Some(index);
                    record.response = Some(response);
                }
            }
        }
        records
            .into_iter()
            .map(|r| r.expect("missing invocation"))
            .collect()
    }

    /// The sub-history of events belonging to `process` (the projection
    /// `H | p`).
    pub fn projection(&self, process: ProcessId) -> Vec<Event> {
        let records = self.records();
        self.events
            .iter()
            .filter(|event| {
                let id = match event {
                    Event::Invoke { id, .. } | Event::Return { id, .. } => *id,
                };
                records[id.index()].process == process
            })
            .copied()
            .collect()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            match event {
                Event::Invoke { id, process, op } => writeln!(f, "{id} {process} call {op}")?,
                Event::Return { id, response } => writeln!(f, "{id} ret {response}")?,
            }
        }
        Ok(())
    }
}

/// A thread-safe handle for recording a [`History`] from many threads.
///
/// Cloning the recorder shares the underlying history; the global event
/// order is the order in which threads win the internal lock, which happens
/// within each operation's real-time interval, making the recorded order a
/// valid real-time order.
///
/// # Example
///
/// ```
/// use at_model::history::{Operation, Recorder, Response};
/// use at_model::{AccountId, Amount, ProcessId};
///
/// let recorder = Recorder::new();
/// let id = recorder.invoke(
///     ProcessId::new(0),
///     Operation::Read { account: AccountId::new(0) },
/// );
/// recorder.respond(id, Response::Read(Amount::new(7)));
/// let history = recorder.into_history();
/// assert_eq!(history.op_count(), 1);
/// assert!(history.is_complete());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Arc<Mutex<History>>,
}

impl Recorder {
    /// Creates a recorder over an empty history.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records an invocation; see [`History::invoke`].
    pub fn invoke(&self, process: ProcessId, op: Operation) -> OpId {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .invoke(process, op)
    }

    /// Records a response; see [`History::respond`].
    pub fn respond(&self, id: OpId, response: Response) {
        self.inner
            .lock()
            .expect("recorder poisoned")
            .respond(id, response);
    }

    /// Extracts the recorded history, cloning if other handles remain.
    pub fn into_history(self) -> History {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => mutex.into_inner().expect("recorder poisoned"),
            Err(arc) => arc.lock().expect("recorder poisoned").clone(),
        }
    }

    /// Takes a snapshot of the history recorded so far.
    pub fn snapshot(&self) -> History {
        self.inner.lock().expect("recorder poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn read_op(i: u32) -> Operation {
        Operation::Read {
            account: AccountId::new(i),
        }
    }

    #[test]
    fn sequential_history_records_in_order() {
        let mut h = History::new();
        let id0 = h.invoke(p(0), read_op(0));
        h.respond(id0, Response::Read(Amount::new(1)));
        let id1 = h.invoke(p(1), read_op(1));
        h.respond(id1, Response::Read(Amount::new(2)));

        assert_eq!(h.op_count(), 2);
        assert!(h.is_complete());
        let records = h.records();
        assert_eq!(records[0].invoked_at, 0);
        assert_eq!(records[0].returned_at, Some(1));
        assert_eq!(records[1].invoked_at, 2);
        assert_eq!(records[1].returned_at, Some(3));
    }

    #[test]
    fn concurrent_ops_interleave() {
        let mut h = History::new();
        let id0 = h.invoke(p(0), read_op(0));
        let id1 = h.invoke(p(1), read_op(0));
        h.respond(id1, Response::Read(Amount::ZERO));
        h.respond(id0, Response::Read(Amount::ZERO));
        let records = h.records();
        assert_eq!(records[0].invoked_at, 0);
        assert_eq!(records[0].returned_at, Some(3));
        assert_eq!(records[1].returned_at, Some(2));
    }

    #[test]
    fn pending_operation_is_incomplete() {
        let mut h = History::new();
        let _ = h.invoke(p(0), read_op(0));
        assert!(!h.is_complete());
        let records = h.records();
        assert!(!records[0].is_complete());
        assert_eq!(records[0].response, None);
    }

    #[test]
    #[should_panic(expected = "unknown operation")]
    fn respond_to_unknown_op_panics() {
        let mut h = History::new();
        h.respond(OpId(3), Response::Transfer(true));
    }

    #[test]
    fn projection_filters_by_process() {
        let mut h = History::new();
        let id0 = h.invoke(p(0), read_op(0));
        let id1 = h.invoke(p(1), read_op(1));
        h.respond(id0, Response::Read(Amount::ZERO));
        h.respond(id1, Response::Read(Amount::ZERO));
        let proj = h.projection(p(0));
        assert_eq!(proj.len(), 2);
        assert!(matches!(proj[0], Event::Invoke { id, .. } if id == id0));
        assert!(matches!(proj[1], Event::Return { id, .. } if id == id0));
    }

    #[test]
    fn recorder_shares_history_across_clones() {
        let recorder = Recorder::new();
        let other = recorder.clone();
        let id = recorder.invoke(p(0), read_op(0));
        other.respond(id, Response::Read(Amount::ZERO));
        drop(other);
        let history = recorder.into_history();
        assert_eq!(history.op_count(), 1);
        assert!(history.is_complete());
    }

    #[test]
    fn recorder_snapshot_is_a_copy() {
        let recorder = Recorder::new();
        let _ = recorder.invoke(p(0), read_op(0));
        let snap = recorder.snapshot();
        let _ = recorder.invoke(p(1), read_op(1));
        assert_eq!(snap.op_count(), 1);
        assert_eq!(recorder.into_history().op_count(), 2);
    }

    #[test]
    fn recorder_into_history_with_live_clone_clones() {
        let recorder = Recorder::new();
        let keep_alive = recorder.clone();
        let id = recorder.invoke(p(0), read_op(0));
        keep_alive.respond(id, Response::Read(Amount::ZERO));
        let history = recorder.into_history();
        assert_eq!(history.op_count(), 1);
        // The clone still works after extraction.
        let _ = keep_alive.invoke(p(1), read_op(1));
    }

    #[test]
    fn display_renders_events() {
        let mut h = History::new();
        let id = h.invoke(
            p(0),
            Operation::Transfer {
                source: AccountId::new(0),
                destination: AccountId::new(1),
                amount: Amount::new(5),
            },
        );
        h.respond(id, Response::Transfer(true));
        let text = h.to_string();
        assert!(text.contains("transfer(acct0,acct1,5)"));
        assert!(text.contains("ret true"));
    }
}
