//! Transfer records.
//!
//! A [`Transfer`] is the wire- and history-level record of a
//! `transfer(a, b, x)` invocation: source, destination, amount, the
//! originating process, and the originator's sequence number. The
//! `(originator, seq)` pair uniquely identifies a transfer in every protocol
//! in this workspace, and is captured by [`TransferId`].

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::{AccountId, Amount, ProcessId, SeqNo};
use std::fmt;

/// A unique transfer identifier: the originating process and its sequence
/// number for this transfer.
///
/// A benign process issues at most one transfer per sequence number, so the
/// pair is unique system-wide for benign originators; the broadcast layer
/// enforces the same uniqueness against Byzantine originators.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId {
    /// The process that issued the transfer.
    pub originator: ProcessId,
    /// The originator's sequence number for the transfer.
    pub seq: SeqNo,
}

impl TransferId {
    /// Creates a transfer identifier.
    pub const fn new(originator: ProcessId, seq: SeqNo) -> Self {
        TransferId { originator, seq }
    }
}

impl fmt::Debug for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.originator, self.seq)
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.originator, self.seq)
    }
}

impl Encode for TransferId {
    fn encode(&self, w: &mut Writer) {
        self.originator.encode(w);
        self.seq.encode(w);
    }
}

impl Decode for TransferId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TransferId {
            originator: ProcessId::decode(r)?,
            seq: SeqNo::decode(r)?,
        })
    }
}

/// The record of a `transfer(a, b, x)` operation.
///
/// Matches the 5-tuple `(a, b, x, s, r)` used by the paper's Figure 3 and
/// the `(q, d, y, s)` message payload of Figure 4, where the round/sequence
/// metadata is carried in [`Transfer::seq`] and the originator in
/// [`Transfer::originator`].
///
/// # Example
///
/// ```
/// use at_model::{AccountId, Amount, ProcessId, SeqNo, Transfer};
///
/// let tx = Transfer::new(
///     AccountId::new(0),
///     AccountId::new(1),
///     Amount::new(25),
///     ProcessId::new(0),
///     SeqNo::new(1),
/// );
/// assert!(tx.is_outgoing_for(AccountId::new(0)));
/// assert!(tx.is_incoming_for(AccountId::new(1)));
/// assert!(tx.involves(AccountId::new(0)) && tx.involves(AccountId::new(1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Transfer {
    /// Source account `a` (debited).
    pub source: AccountId,
    /// Destination account `b` (credited).
    pub destination: AccountId,
    /// Amount `x` moved from `a` to `b`.
    pub amount: Amount,
    /// The process that issued the transfer.
    pub originator: ProcessId,
    /// The originator's sequence number for this transfer.
    pub seq: SeqNo,
}

impl Transfer {
    /// Creates a transfer record.
    pub const fn new(
        source: AccountId,
        destination: AccountId,
        amount: Amount,
        originator: ProcessId,
        seq: SeqNo,
    ) -> Self {
        Transfer {
            source,
            destination,
            amount,
            originator,
            seq,
        }
    }

    /// The unique identifier of this transfer.
    pub const fn id(&self) -> TransferId {
        TransferId::new(self.originator, self.seq)
    }

    /// Whether the transfer debits `account`.
    pub fn is_outgoing_for(&self, account: AccountId) -> bool {
        self.source == account
    }

    /// Whether the transfer credits `account`.
    pub fn is_incoming_for(&self, account: AccountId) -> bool {
        self.destination == account
    }

    /// Whether the transfer is incoming or outgoing for `account`
    /// ("involves" in the paper's Figure 4 terminology).
    pub fn involves(&self, account: AccountId) -> bool {
        self.is_outgoing_for(account) || self.is_incoming_for(account)
    }

    /// Whether source and destination are the same account (a no-op
    /// transfer permitted by `Δ`: the balance is unchanged).
    pub fn is_self_transfer(&self) -> bool {
        self.source == self.destination
    }
}

impl fmt::Debug for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}--{:?}-->{}",
            self.id(),
            self.source,
            self.amount,
            self.destination
        )
    }
}

impl fmt::Display for Transfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transfer {} of {} from {} to {}",
            self.id(),
            self.amount,
            self.source,
            self.destination
        )
    }
}

impl Encode for Transfer {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.destination.encode(w);
        self.amount.encode(w);
        self.originator.encode(w);
        self.seq.encode(w);
    }
}

impl Decode for Transfer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Transfer {
            source: AccountId::decode(r)?,
            destination: AccountId::decode(r)?,
            amount: Amount::decode(r)?,
            originator: ProcessId::decode(r)?,
            seq: SeqNo::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode, encode};

    fn tx() -> Transfer {
        Transfer::new(
            AccountId::new(0),
            AccountId::new(1),
            Amount::new(25),
            ProcessId::new(2),
            SeqNo::new(3),
        )
    }

    #[test]
    fn identity_is_originator_and_seq() {
        let t = tx();
        assert_eq!(t.id(), TransferId::new(ProcessId::new(2), SeqNo::new(3)));
        assert_eq!(t.id().to_string(), "p2#3");
    }

    #[test]
    fn direction_predicates() {
        let t = tx();
        assert!(t.is_outgoing_for(AccountId::new(0)));
        assert!(!t.is_outgoing_for(AccountId::new(1)));
        assert!(t.is_incoming_for(AccountId::new(1)));
        assert!(!t.is_incoming_for(AccountId::new(0)));
        assert!(t.involves(AccountId::new(0)));
        assert!(t.involves(AccountId::new(1)));
        assert!(!t.involves(AccountId::new(2)));
        assert!(!t.is_self_transfer());
    }

    #[test]
    fn self_transfer_detected() {
        let t = Transfer::new(
            AccountId::new(4),
            AccountId::new(4),
            Amount::new(1),
            ProcessId::new(0),
            SeqNo::new(1),
        );
        assert!(t.is_self_transfer());
        assert!(t.involves(AccountId::new(4)));
    }

    #[test]
    fn codec_roundtrip() {
        let t = tx();
        let bytes = encode(&t);
        assert_eq!(bytes.len(), 4 + 4 + 8 + 4 + 8);
        let back: Transfer = decode(&bytes).unwrap();
        assert_eq!(t, back);

        let id = t.id();
        let back_id: TransferId = decode(&encode(&id)).unwrap();
        assert_eq!(id, back_id);
    }

    #[test]
    fn display_formats() {
        let t = tx();
        assert_eq!(t.to_string(), "transfer p2#3 of 25 from acct0 to acct1");
        assert_eq!(format!("{t:?}"), "p2#3: acct0--25¤-->acct1");
    }

    #[test]
    fn ordering_is_lexicographic_on_fields() {
        let t1 = Transfer::new(
            AccountId::new(0),
            AccountId::new(1),
            Amount::new(5),
            ProcessId::new(0),
            SeqNo::new(1),
        );
        let t2 = Transfer::new(
            AccountId::new(0),
            AccountId::new(1),
            Amount::new(5),
            ProcessId::new(0),
            SeqNo::new(2),
        );
        assert!(t1 < t2);
    }
}
