//! # at-model — the asset-transfer object type
//!
//! This crate contains the *formal core* of the paper "The Consensus Number
//! of a Cryptocurrency" (Guerraoui et al., PODC 2019): the asset-transfer
//! sequential object type of Section 2.2, expressed as executable Rust.
//!
//! It provides:
//!
//! * strongly-typed identifiers ([`ProcessId`], [`AccountId`], [`Amount`],
//!   [`SeqNo`]) — see [`ids`];
//! * the [`Transfer`] operation record and per-operation metadata — see
//!   [`transfer`];
//! * the owner map `µ : A → 2^Π` ([`OwnerMap`]) that determines which
//!   processes may debit which account — see [`owner`];
//! * the sequential specification `Δ` as an executable reference model
//!   ([`Ledger`]) — see [`spec`];
//! * concurrent operation histories ([`History`]) recorded by test harnesses
//!   — see [`history`];
//! * a Wing–Gong style linearizability checker ([`check::linearizable`])
//!   that validates recorded histories against the sequential specification;
//! * a deterministic, canonical binary codec ([`codec`]) used for hashing
//!   and signing messages in the message-passing protocols.
//!
//! # Example
//!
//! ```
//! use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId};
//!
//! let alice = AccountId::new(0);
//! let bob = AccountId::new(1);
//! let p0 = ProcessId::new(0);
//!
//! let owners = OwnerMap::single_owner([(alice, p0)]);
//! let mut ledger = Ledger::new([(alice, Amount::new(10)), (bob, Amount::new(0))], owners);
//!
//! // p0 owns `alice` and has sufficient balance: the transfer succeeds.
//! assert!(ledger.transfer(p0, alice, bob, Amount::new(4)).is_ok());
//! assert_eq!(ledger.read(alice), Amount::new(6));
//! assert_eq!(ledger.read(bob), Amount::new(4));
//!
//! // Debiting an account the process does not own fails, per Δ.
//! assert!(ledger.transfer(p0, bob, alice, Amount::new(1)).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod codec;
pub mod error;
pub mod history;
pub mod ids;
pub mod multi;
pub mod owner;
pub mod spec;
pub mod transfer;

pub use check::{linearizable, linearizable_bounded, BoundedOutcome, CheckBudget, CheckOutcome};
pub use codec::{Decode, Encode, Reader, Writer};
pub use error::{CodecError, TransferError};
pub use history::{Event, History, OpId, Operation, Response};
pub use ids::{AccountId, Amount, ProcessId, Round, SeqNo};
pub use multi::MultiTransfer;
pub use owner::OwnerMap;
pub use spec::Ledger;
pub use transfer::{Transfer, TransferId};
