//! Strongly-typed identifiers used throughout the workspace.
//!
//! The paper works with a set `Π` of `N` processes and a set `A` of
//! accounts. We represent both with dense `u32` indices wrapped in newtypes
//! ([C-NEWTYPE]) so that a process index can never be confused with an
//! account index, and monetary amounts ([`Amount`]) can never be confused
//! with either.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use std::fmt;

/// Identifier of a process in `Π = {0, …, N-1}`.
///
/// # Example
///
/// ```
/// use at_model::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all process identifiers `p0 … p(n-1)`.
    ///
    /// ```
    /// use at_model::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all.len(), 3);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n as u32).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(index: u32) -> Self {
        ProcessId(index)
    }
}

/// Identifier of an account in `A`.
///
/// # Example
///
/// ```
/// use at_model::AccountId;
/// let a = AccountId::new(7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(a.to_string(), "acct7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AccountId(u32);

impl AccountId {
    /// Creates an account identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        AccountId(index)
    }

    /// Returns the dense index of this account.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all account identifiers `acct0 … acct(n-1)`.
    pub fn all(n: usize) -> impl Iterator<Item = AccountId> + Clone {
        (0..n as u32).map(AccountId)
    }
}

impl fmt::Debug for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

impl From<u32> for AccountId {
    fn from(index: u32) -> Self {
        AccountId(index)
    }
}

/// A non-negative quantity of the transferred asset.
///
/// The paper models balances as natural numbers; we use a `u64` with
/// *checked* arithmetic — the spec guarantees balances never go negative,
/// and [`Amount::checked_sub`] returning `None` is how implementations
/// detect insufficient funds.
///
/// # Example
///
/// ```
/// use at_model::Amount;
/// let a = Amount::new(10);
/// let b = Amount::new(4);
/// assert_eq!(a.checked_sub(b), Some(Amount::new(6)));
/// assert_eq!(b.checked_sub(a), None);
/// assert_eq!(a.saturating_add(b), Amount::new(14));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(u64);

impl Amount {
    /// The zero amount.
    pub const ZERO: Amount = Amount(0);

    /// Creates an amount from a raw unit count.
    pub const fn new(units: u64) -> Self {
        Amount(units)
    }

    /// Returns the raw unit count.
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Checked subtraction; `None` when `other` exceeds `self`.
    pub fn checked_sub(self, other: Amount) -> Option<Amount> {
        self.0.checked_sub(other.0).map(Amount)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: Amount) -> Option<Amount> {
        self.0.checked_add(other.0).map(Amount)
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Amount) -> Amount {
        Amount(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: Amount) -> Amount {
        Amount(self.0.saturating_sub(other.0))
    }

    /// Returns `true` when the amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}¤", self.0)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for Amount {
    fn from(units: u64) -> Self {
        Amount(units)
    }
}

impl std::iter::Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, x| acc.saturating_add(x))
    }
}

/// A per-process transfer sequence number.
///
/// In the message-passing protocol (Figure 4) every process numbers its
/// outgoing transfers `1, 2, 3, …`; sequence numbers are the backbone of the
/// source-order delivery guarantee.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(u64);

impl SeqNo {
    /// Sequence number zero: "no transfers yet".
    pub const ZERO: SeqNo = SeqNo(0);

    /// Creates a sequence number.
    pub const fn new(value: u64) -> Self {
        SeqNo(value)
    }

    /// Returns the raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The successor sequence number.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow, which cannot occur in practice.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.checked_add(1).expect("sequence number overflow"))
    }

    /// Returns `true` when `other` is exactly `self + 1`.
    pub fn is_successor(self, other: SeqNo) -> bool {
        other.0 == self.0 + 1
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<u64> for SeqNo {
    fn from(value: u64) -> Self {
        SeqNo(value)
    }
}

/// A round number in the shared-memory `k`-consensus reduction (Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// The first round.
    pub const ZERO: Round = Round(0);

    /// Creates a round number.
    pub const fn new(value: u64) -> Self {
        Round(value)
    }

    /// Returns the raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

macro_rules! impl_u32_codec {
    ($ty:ty) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_u32(self.0);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(Self(r.take_u32()?))
            }
        }
    };
}

macro_rules! impl_u64_codec {
    ($ty:ty) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_u64(self.0);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(Self(r.take_u64()?))
            }
        }
    };
}

impl_u32_codec!(ProcessId);
impl_u32_codec!(AccountId);
impl_u64_codec!(Amount);
impl_u64_codec!(SeqNo);
impl_u64_codec!(Round);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_display() {
        let p = ProcessId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.as_usize(), 42);
        assert_eq!(format!("{p}"), "p42");
        assert_eq!(format!("{p:?}"), "p42");
        assert_eq!(ProcessId::from(42u32), p);
    }

    #[test]
    fn process_id_all_enumerates_in_order() {
        let all: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            all,
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn account_id_display() {
        let a = AccountId::new(7);
        assert_eq!(format!("{a}"), "acct7");
        assert_eq!(AccountId::all(2).count(), 2);
    }

    #[test]
    fn amount_checked_arithmetic() {
        let ten = Amount::new(10);
        let four = Amount::new(4);
        assert_eq!(ten.checked_sub(four), Some(Amount::new(6)));
        assert_eq!(four.checked_sub(ten), None);
        assert_eq!(ten.checked_add(four), Some(Amount::new(14)));
        assert_eq!(Amount::new(u64::MAX).checked_add(Amount::new(1)), None);
        assert_eq!(
            Amount::new(u64::MAX).saturating_add(Amount::new(5)),
            Amount::new(u64::MAX)
        );
        assert_eq!(four.saturating_sub(ten), Amount::ZERO);
        assert!(Amount::ZERO.is_zero());
        assert!(!ten.is_zero());
    }

    #[test]
    fn amount_sum() {
        let total: Amount = [1u64, 2, 3].into_iter().map(Amount::new).sum();
        assert_eq!(total, Amount::new(6));
    }

    #[test]
    fn seqno_succession() {
        let s = SeqNo::ZERO;
        assert_eq!(s.next(), SeqNo::new(1));
        assert!(s.is_successor(SeqNo::new(1)));
        assert!(!s.is_successor(SeqNo::new(2)));
        assert!(!SeqNo::new(5).is_successor(SeqNo::new(5)));
    }

    #[test]
    fn round_succession() {
        assert_eq!(Round::ZERO.next(), Round::new(1));
        assert_eq!(Round::new(3).value(), 3);
        assert_eq!(format!("{}", Round::new(3)), "r3");
    }

    #[test]
    fn ordering_is_index_order() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert!(AccountId::new(0) < AccountId::new(9));
        assert!(Amount::new(5) < Amount::new(6));
        assert!(SeqNo::new(1) < SeqNo::new(2));
    }
}
