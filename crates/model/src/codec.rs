//! Canonical binary codec.
//!
//! The message-passing protocols sign and hash messages, which requires a
//! *deterministic* byte representation: the same value must always encode to
//! the same bytes on every process. This module provides a small,
//! dependency-free codec with that property:
//!
//! * fixed-width little-endian integers;
//! * `u64` length prefixes for sequences, with a sanity limit;
//! * no implicit padding, no floating point.
//!
//! The [`Encode`] / [`Decode`] traits are implemented for primitives,
//! `Option`, `Vec`, tuples, and every wire-visible type in the workspace.
//!
//! # Example
//!
//! ```
//! use at_model::codec::{decode, encode, Decode, Encode};
//!
//! let value: (u32, Option<bool>, Vec<u8>) = (7, Some(true), vec![1, 2, 3]);
//! let bytes = encode(&value);
//! let back: (u32, Option<bool>, Vec<u8>) = decode(&bytes)?;
//! assert_eq!(value, back);
//! # Ok::<(), at_model::CodecError>(())
//! ```

use crate::error::CodecError;
use bytes::{Buf, BufMut, BytesMut};

/// Maximum declared length of any decoded sequence, as a denial-of-service
/// guard on untrusted input (16 MiB of elements).
pub const MAX_SEQUENCE_LEN: u64 = 16 * 1024 * 1024;

/// An append-only encoding buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(capacity),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.put_bytes(bytes);
    }

    /// Finishes encoding and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.bytes.len() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.bytes.len(),
            });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Reads a single byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let mut b = self.take(2)?;
        Ok(b.get_u16_le())
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u64` length prefix (validated against
    /// [`MAX_SEQUENCE_LEN`]) followed by that many bytes.
    pub fn take_len_prefixed(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.take_u64()?;
        if len > MAX_SEQUENCE_LEN {
            return Err(CodecError::LengthOverflow {
                declared: len,
                limit: MAX_SEQUENCE_LEN,
            });
        }
        self.take(len as usize)
    }

    /// Reads a validated sequence length prefix.
    pub fn take_seq_len(&mut self) -> Result<usize, CodecError> {
        let len = self.take_u64()?;
        if len > MAX_SEQUENCE_LEN {
            return Err(CodecError::LengthOverflow {
                declared: len,
                limit: MAX_SEQUENCE_LEN,
            });
        }
        Ok(len as usize)
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes `self` into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types decodable from the canonical binary encoding.
pub trait Decode: Sized {
    /// Decodes a value from the reader, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the input is truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_bytes()
}

/// Decodes a value from `bytes`, requiring all input to be consumed.
///
/// # Errors
///
/// Returns a [`CodecError`] when the input is truncated, malformed, or has
/// trailing bytes.
pub fn decode<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

impl Encode for () {
    fn encode(&self, _w: &mut Writer) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag {
                type_name: "bool",
                tag,
            }),
        }
    }
}

impl Encode for str {
    fn encode(&self, w: &mut Writer) {
        w.put_len_prefixed(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        self.as_str().encode(w);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take_len_prefixed()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                type_name: "Option",
                tag,
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.take_seq_len()?;
        // Guard allocation: cap the pre-allocation, grow as decoded.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take_bytes(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

macro_rules! impl_tuple_codec {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $(self.$idx.encode(w);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_tuple_codec!(A: 0);
impl_tuple_codec!(A: 0, B: 1);
impl_tuple_codec!(A: 0, B: 1, C: 2);
impl_tuple_codec!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_codec!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode(&value);
        let back: T = decode(&bytes).expect("decode");
        assert_eq!(value, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("hello, κόσμος"));
        roundtrip(String::new());
    }

    #[test]
    fn unit_encodes_to_nothing() {
        assert!(encode(&()).is_empty());
        decode::<()>(&[]).expect("unit decodes from empty input");
        // A unit inside a container consumes no bytes either.
        assert_eq!(encode(&vec![(), (), ()]).len(), 8);
        roundtrip(vec![(), (), ()]);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(99u64));
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(vec![Some(1u8), None, Some(3)]);
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip([7u8; 32]);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = (vec![3u32, 1, 2], Some(false), String::from("x"));
        assert_eq!(encode(&v), encode(&v.clone()));
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(encode(&0x0102_0304u32), vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!(encode(&1u64)[0], 1);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = encode(&0xAABBCCDDu32);
        let err = decode::<u32>(&bytes[..3]).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEnd { .. }));
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = encode(&7u32);
        bytes.push(0);
        let err = decode::<u32>(&bytes).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn invalid_bool_tag_fails() {
        let err = decode::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, CodecError::InvalidTag { tag: 2, .. }));
    }

    #[test]
    fn invalid_option_tag_fails() {
        let err = decode::<Option<u8>>(&[9, 0]).unwrap_err();
        assert!(matches!(err, CodecError::InvalidTag { tag: 9, .. }));
    }

    #[test]
    fn oversized_length_prefix_fails() {
        let mut w = Writer::new();
        w.put_u64(MAX_SEQUENCE_LEN + 1);
        let err = decode::<Vec<u8>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, CodecError::LengthOverflow { .. }));
    }

    #[test]
    fn invalid_utf8_fails() {
        let mut w = Writer::new();
        w.put_len_prefixed(&[0xff, 0xfe]);
        let err = decode::<String>(&w.into_bytes()).unwrap_err();
        assert_eq!(err, CodecError::InvalidUtf8);
    }

    #[test]
    fn writer_state_accessors() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
