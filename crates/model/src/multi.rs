//! Multi-source / multi-destination transfers.
//!
//! Section 2.2 of the paper: "our definition (and implementation) of the
//! asset-transfer object type can trivially be extended to support
//! transfers with multiple source accounts (all owned by the same
//! sequential process) and multiple destination accounts". This module is
//! that extension: a [`MultiTransfer`] debits several accounts — all of
//! which the invoking process must own — and credits several accounts, in
//! one atomic step, conserving the total.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{CodecError, TransferError};
use crate::ids::{AccountId, Amount, ProcessId};
use crate::spec::Ledger;

/// An atomic transfer from several owned source accounts to several
/// destination accounts.
///
/// The debited total must equal the credited total; validation is
/// all-or-nothing (per `Δ`, a failed transfer leaves the state
/// untouched).
///
/// # Example
///
/// ```
/// use at_model::multi::MultiTransfer;
/// use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId};
///
/// let p = ProcessId::new(0);
/// let owners = OwnerMap::single_owner([
///     (AccountId::new(0), p),
///     (AccountId::new(1), p),
/// ]);
/// let mut ledger = Ledger::new(
///     [
///         (AccountId::new(0), Amount::new(10)),
///         (AccountId::new(1), Amount::new(5)),
///         (AccountId::new(2), Amount::ZERO),
///     ],
///     owners,
/// );
///
/// // Consolidate both accounts into account 2.
/// let tx = MultiTransfer::new(
///     [(AccountId::new(0), Amount::new(10)), (AccountId::new(1), Amount::new(5))],
///     [(AccountId::new(2), Amount::new(15))],
/// );
/// tx.apply(p, &mut ledger)?;
/// assert_eq!(ledger.read(AccountId::new(2)), Amount::new(15));
/// # Ok::<(), at_model::TransferError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiTransfer {
    debits: Vec<(AccountId, Amount)>,
    credits: Vec<(AccountId, Amount)>,
}

impl MultiTransfer {
    /// Creates a multi-transfer from debit and credit legs.
    pub fn new<D, C>(debits: D, credits: C) -> Self
    where
        D: IntoIterator<Item = (AccountId, Amount)>,
        C: IntoIterator<Item = (AccountId, Amount)>,
    {
        MultiTransfer {
            debits: debits.into_iter().collect(),
            credits: credits.into_iter().collect(),
        }
    }

    /// The debit legs.
    pub fn debits(&self) -> &[(AccountId, Amount)] {
        &self.debits
    }

    /// The credit legs.
    pub fn credits(&self) -> &[(AccountId, Amount)] {
        &self.credits
    }

    /// Total debited amount (saturating; validation catches overflow).
    pub fn debit_total(&self) -> Amount {
        self.debits.iter().map(|(_, x)| *x).sum()
    }

    /// Total credited amount.
    pub fn credit_total(&self) -> Amount {
        self.credits.iter().map(|(_, x)| *x).sum()
    }

    /// Whether debits and credits balance.
    pub fn is_balanced(&self) -> bool {
        self.debit_total() == self.credit_total()
    }

    /// Validates the transfer against `ledger` for invoker `process`
    /// without applying it.
    ///
    /// # Errors
    ///
    /// * [`TransferError::NotOwner`] — some debited account is not owned
    ///   by `process` (this also covers an unbalanced transfer attempt,
    ///   reported against the first debit, when no debits exist at all);
    /// * [`TransferError::UnknownAccount`] — a leg names an account
    ///   outside `A`;
    /// * [`TransferError::InsufficientBalance`] — a debited account
    ///   cannot cover its leg (aggregated per account: the same account
    ///   may appear in several legs).
    pub fn check(&self, process: ProcessId, ledger: &Ledger) -> Result<(), TransferError> {
        // Unbalanced transfers are malformed: report against the first
        // account involved.
        if !self.is_balanced() {
            let account = self
                .debits
                .first()
                .or(self.credits.first())
                .map(|(a, _)| *a)
                .unwrap_or(AccountId::new(0));
            return Err(TransferError::InsufficientBalance {
                account,
                balance: self.debit_total(),
                requested: self.credit_total(),
            });
        }
        for (account, _) in self.debits.iter().chain(self.credits.iter()) {
            if !ledger.contains_account(*account) {
                return Err(TransferError::UnknownAccount { account: *account });
            }
        }
        // Aggregate debits per account (an account may appear twice).
        let mut per_account: std::collections::BTreeMap<AccountId, Amount> =
            std::collections::BTreeMap::new();
        for (account, amount) in &self.debits {
            if !ledger.owners().is_owner(process, *account) {
                return Err(TransferError::NotOwner {
                    process,
                    account: *account,
                });
            }
            let slot = per_account.entry(*account).or_insert(Amount::ZERO);
            *slot = slot.saturating_add(*amount);
        }
        for (account, total) in per_account {
            let balance = ledger.read(account);
            if balance < total {
                return Err(TransferError::InsufficientBalance {
                    account,
                    balance,
                    requested: total,
                });
            }
        }
        Ok(())
    }

    /// Validates and atomically applies the transfer.
    ///
    /// # Errors
    ///
    /// Same as [`MultiTransfer::check`]; on error the ledger is
    /// unchanged.
    pub fn apply(&self, process: ProcessId, ledger: &mut Ledger) -> Result<(), TransferError> {
        self.check(process, ledger)?;
        // Route every debit leg into the first credit account, then
        // redistribute from there. Each intermediate move is covered:
        // `check` validated per-account debit totals against the initial
        // state, and the sink only ever accumulates. Overlapping
        // debit/credit accounts net out arithmetically.
        //
        // No credit legs ⇒ balance forces every debit to be zero: noop.
        let Some(sink) = self.credits.first().map(|(a, _)| *a) else {
            return Ok(());
        };
        for (account, amount) in &self.debits {
            // Temporarily move each debit leg into the first credit
            // account; the per-account aggregation in `check` guarantees
            // every step is covered.
            ledger
                .transfer(process, *account, sink, *amount)
                .expect("pre-validated leg");
        }
        // Redistribute from the first credit account to the others.
        if let Some(((first, _), rest)) = self.credits.split_first() {
            for (account, amount) in rest {
                ledger
                    .force_move(*first, *account, *amount)
                    .expect("pre-validated leg");
            }
        }
        Ok(())
    }
}

impl Encode for MultiTransfer {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.debits.len() as u64);
        for (account, amount) in &self.debits {
            account.encode(w);
            amount.encode(w);
        }
        w.put_u64(self.credits.len() as u64);
        for (account, amount) in &self.credits {
            account.encode(w);
            amount.encode(w);
        }
    }
}

impl Decode for MultiTransfer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let read_legs = |r: &mut Reader<'_>| -> Result<Vec<(AccountId, Amount)>, CodecError> {
            let len = r.take_seq_len()?;
            let mut out = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                out.push((AccountId::decode(r)?, Amount::decode(r)?));
            }
            Ok(out)
        };
        let debits = read_legs(r)?;
        let credits = read_legs(r)?;
        Ok(MultiTransfer { debits, credits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::OwnerMap;

    fn a(i: u32) -> AccountId {
        AccountId::new(i)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn amt(x: u64) -> Amount {
        Amount::new(x)
    }

    fn ledger() -> Ledger {
        // p0 owns accounts 0 and 1; p1 owns account 2; account 3 unowned.
        let owners = OwnerMap::builder()
            .account(a(0), [p(0)])
            .account(a(1), [p(0)])
            .account(a(2), [p(1)])
            .account(a(3), [])
            .build();
        Ledger::new(
            [
                (a(0), amt(10)),
                (a(1), amt(5)),
                (a(2), amt(7)),
                (a(3), amt(0)),
            ],
            owners,
        )
    }

    #[test]
    fn consolidation_and_fanout() {
        let mut l = ledger();
        // Consolidate 0 and 1 into 3, split a bit to 2.
        let tx = MultiTransfer::new(
            [(a(0), amt(10)), (a(1), amt(5))],
            [(a(3), amt(12)), (a(2), amt(3))],
        );
        assert!(tx.is_balanced());
        tx.apply(p(0), &mut l).unwrap();
        assert_eq!(l.read(a(0)), amt(0));
        assert_eq!(l.read(a(1)), amt(0));
        assert_eq!(l.read(a(2)), amt(10));
        assert_eq!(l.read(a(3)), amt(12));
        assert_eq!(l.total_supply(), amt(22));
    }

    #[test]
    fn foreign_source_rejected() {
        let mut l = ledger();
        let tx = MultiTransfer::new([(a(0), amt(1)), (a(2), amt(1))], [(a(3), amt(2))]);
        let err = tx.apply(p(0), &mut l).unwrap_err();
        assert!(matches!(err, TransferError::NotOwner { account, .. } if account == a(2)));
        assert_eq!(l.total_supply(), amt(22));
        assert_eq!(l.read(a(0)), amt(10), "atomic: nothing applied");
    }

    #[test]
    fn unbalanced_rejected() {
        let mut l = ledger();
        let tx = MultiTransfer::new([(a(0), amt(5))], [(a(3), amt(4))]);
        assert!(!tx.is_balanced());
        assert!(tx.apply(p(0), &mut l).is_err());
        assert_eq!(l.read(a(0)), amt(10));
    }

    #[test]
    fn aggregated_overdraft_rejected() {
        let mut l = ledger();
        // Two legs of 6 from account 0 (balance 10): individually fine,
        // aggregated they overdraw.
        let tx = MultiTransfer::new([(a(0), amt(6)), (a(0), amt(6))], [(a(3), amt(12))]);
        let err = tx.apply(p(0), &mut l).unwrap_err();
        assert!(matches!(
            err,
            TransferError::InsufficientBalance { requested, .. } if requested == amt(12)
        ));
    }

    #[test]
    fn unknown_account_rejected() {
        let mut l = ledger();
        let tx = MultiTransfer::new([(a(0), amt(1))], [(a(9), amt(1))]);
        assert!(matches!(
            tx.apply(p(0), &mut l),
            Err(TransferError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn empty_transfer_is_a_noop() {
        let mut l = ledger();
        let tx = MultiTransfer::new([], []);
        tx.apply(p(0), &mut l).unwrap();
        assert_eq!(l.total_supply(), amt(22));
    }

    #[test]
    fn zero_debits_without_credits_is_a_noop() {
        let mut l = ledger();
        let tx = MultiTransfer::new([(a(0), amt(0))], []);
        assert!(tx.is_balanced());
        tx.apply(p(0), &mut l).unwrap();
        assert_eq!(l.read(a(0)), amt(10));
    }

    #[test]
    fn overlapping_debit_and_credit_nets_out() {
        let mut l = ledger();
        // Debit 5 from account 0 while crediting 2 back to it.
        let tx = MultiTransfer::new([(a(0), amt(5))], [(a(0), amt(2)), (a(3), amt(3))]);
        tx.apply(p(0), &mut l).unwrap();
        assert_eq!(l.read(a(0)), amt(7));
        assert_eq!(l.read(a(3)), amt(3));
        assert_eq!(l.total_supply(), amt(22));
    }

    #[test]
    fn codec_roundtrip() {
        let tx = MultiTransfer::new([(a(0), amt(10)), (a(1), amt(5))], [(a(3), amt(15))]);
        let bytes = crate::codec::encode(&tx);
        let back: MultiTransfer = crate::codec::decode(&bytes).unwrap();
        assert_eq!(tx, back);
        assert_eq!(back.debits().len(), 2);
        assert_eq!(back.credits().len(), 1);
        assert_eq!(back.debit_total(), amt(15));
        assert_eq!(back.credit_total(), amt(15));
    }
}
