//! Shared helpers for the runnable examples.
//!
//! Each example binary (`quickstart`, `payment_network`, `shared_account`,
//! `consensus_from_transfers`) is self-contained; this library only hosts
//! small formatting utilities they share.

#![forbid(unsafe_code)]

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
