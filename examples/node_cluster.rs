//! Demo: a real 4-node asset-transfer cluster on loopback TCP.
//!
//! Boots four at-node replicas (signed-echo broadcast backend) on real
//! sockets, connects a TCP client to each, moves money around, attempts
//! a double spend over the wire, and prints every replica's converged
//! balances.
//!
//! Run with `cargo run -p at-examples --example node_cluster --release`.

use at_broadcast::auth::NoAuth;
use at_broadcast::echo::EchoBroadcast;
use at_engine::replica::EnginePayload;
use at_engine::EngineConfig;
use at_model::{AccountId, Amount};
use at_net::VirtualTime;
use at_node::{await_convergence, start_tcp_cluster, Client, NodeConfig, ResponseBody, TcpOptions};
use std::time::Duration;

type Echo = EchoBroadcast<EnginePayload, NoAuth>;

fn main() {
    let n = 4;
    let initial = Amount::new(1_000);
    let config = NodeConfig::new(
        EngineConfig::sharded_batched(4, 16, VirtualTime::from_micros(500)),
        initial,
    );
    println!("starting {n} nodes on loopback TCP (signed-echo backend)...");
    let mut cluster = start_tcp_cluster(n, config, TcpOptions::default(), |me| {
        Echo::new(me, n, NoAuth)
    })
    .expect("cluster start");

    // One TCP client per node; each node's owner pays the next account.
    let mut clients: Vec<Client> = cluster
        .client_addrs
        .iter()
        .map(|addr| Client::connect(*addr).expect("connect"))
        .collect();
    for round in 0u64..3 {
        for (i, client) in clients.iter_mut().enumerate() {
            let dest = AccountId::new(((i + 1) % n) as u32);
            client
                .submit_transfer(dest, Amount::new(10 + round))
                .expect("submit");
        }
    }
    for (i, client) in clients.iter_mut().enumerate() {
        while client.outstanding() > 0 {
            let ack = client
                .recv_response(Duration::from_secs(10))
                .expect("io")
                .expect("ack");
            assert!(
                matches!(ack.body, ResponseBody::Committed { .. }),
                "transfer failed at node {i}: {ack:?}"
            );
        }
        println!("node {i}: all transfers committed over the wire");
    }

    // A double spend: drain the whole balance twice. Admission reserves
    // in-flight amounts, so the second transfer is rejected.
    let spender = &mut clients[0];
    let balance = spender
        .read_balance(AccountId::new(0), Duration::from_secs(5))
        .expect("read");
    spender.submit_transfer(AccountId::new(1), balance).unwrap();
    spender.submit_transfer(AccountId::new(2), balance).unwrap();
    let mut outcomes = Vec::new();
    while spender.outstanding() > 0 {
        outcomes.push(
            spender
                .recv_response(Duration::from_secs(10))
                .expect("io")
                .expect("ack"),
        );
    }
    outcomes.sort_by_key(|r| r.id);
    println!(
        "double spend of {balance}: first -> {:?}, second -> {:?}",
        outcomes[0].body, outcomes[1].body
    );
    assert!(matches!(outcomes[0].body, ResponseBody::Committed { .. }));
    assert!(matches!(outcomes[1].body, ResponseBody::Rejected { .. }));

    // Convergence: byte-identical balances everywhere.
    let handles: Vec<_> = cluster.running().collect();
    let reports = await_convergence(&handles, Duration::from_secs(30)).expect("convergence");
    drop(handles);
    println!("\nconverged balances (identical on every replica):");
    for report in &reports {
        println!(
            "  node {:?}: digest {:016x}, balances {:?}",
            report.node,
            report.digest,
            report
                .balances
                .iter()
                .map(|b| b.units())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.balances, reports[0].balances);
    }
    let supply: u64 = reports[0].balances.iter().map(|b| b.units()).sum();
    assert_eq!(supply, initial.units() * n as u64, "supply conserved");
    println!("\ntotal supply conserved: {supply}");
    cluster.stop_all();
}
