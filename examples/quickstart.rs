//! Quickstart: the asset-transfer object in both worlds.
//!
//! 1. Shared memory — the paper's Figure 1 object (consensus number 1):
//!    wait-free transfers from atomic snapshots alone.
//! 2. Message passing — the paper's Figure 4 system: Byzantine
//!    fault-tolerant payments over secure broadcast, no consensus.
//!
//! Run with `cargo run -p at-examples --bin quickstart`.

use at_core::replica::{ConsensuslessReplica, TransferEvent};
use at_examples::banner;
use at_model::{AccountId, Amount, ProcessId};
use at_net::{NetConfig, Simulation, VirtualTime};
use at_sharedmem::figure1::SnapshotAssetTransfer;
use at_sharedmem::object::SharedAssetTransfer;

fn main() {
    banner("Shared memory: Figure 1 (consensus number 1)");
    // Three processes, process i owns account i, 100 units each.
    let object = SnapshotAssetTransfer::wait_free_uniform(3, Amount::new(100));
    let alice = (ProcessId::new(0), AccountId::new(0));
    let bob = (ProcessId::new(1), AccountId::new(1));

    let ok = object.transfer(alice.0, alice.1, bob.1, Amount::new(30));
    println!("alice -> bob 30: {ok}");
    let ok = object.transfer(alice.0, alice.1, bob.1, Amount::new(80));
    println!("alice -> bob 80 (insufficient): {ok}");
    let ok = object.transfer(bob.0, alice.1, bob.1, Amount::new(1));
    println!("bob debits alice's account (not owner): {ok}");
    println!(
        "balances: alice={}, bob={}",
        object.read(alice.1),
        object.read(bob.1)
    );

    banner("Message passing: Figure 4 over Bracha secure broadcast");
    let n = 4;
    let replicas = (0..n as u32)
        .map(|i| ConsensuslessReplica::bracha(ProcessId::new(i), n, Amount::new(100)))
        .collect();
    let mut sim = Simulation::new(replicas, NetConfig::lan(1));

    // Process 0 pays 25 to account 1; process 1 then forwards 100 to
    // account 2 (which needs the incoming credit).
    sim.schedule(VirtualTime::ZERO, ProcessId::new(0), |replica, ctx| {
        replica.submit(AccountId::new(1), Amount::new(25), ctx);
    });
    sim.schedule(
        VirtualTime::from_millis(5),
        ProcessId::new(1),
        |replica, ctx| {
            replica.submit(AccountId::new(2), Amount::new(110), ctx);
        },
    );
    sim.run_until_quiet(1_000_000);

    for (at, process, event) in sim.take_events() {
        if let TransferEvent::Completed { transfer } = event {
            println!("[{at}] {process} completed {transfer}");
        }
    }
    let observer = sim.actor(ProcessId::new(3));
    println!(
        "observer's converged balances: acct0={}, acct1={}, acct2={}",
        observer.observed_balance(AccountId::new(0)),
        observer.observed_balance(AccountId::new(1)),
        observer.observed_balance(AccountId::new(2)),
    );
    println!(
        "network: {} messages for 2 transfers across {n} processes",
        sim.stats().messages_sent
    );
}
