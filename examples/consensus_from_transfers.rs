//! Figure 2 live: electing a leader among k processes using nothing but
//! registers and one k-shared asset-transfer object — the construction
//! showing the object's consensus number is at least k.
//!
//! The account starts with balance 2k; process p withdraws 2k − p. Any
//! two withdrawals overdraw, so exactly one succeeds, and the residual
//! balance *is* the winner's identity.
//!
//! Run with `cargo run -p at-examples --bin consensus_from_transfers`.

use at_examples::banner;
use at_model::ProcessId;
use at_sharedmem::figure2::TransferConsensus;
use at_sharedmem::object::MutexAssetTransfer;
use std::sync::Arc;
use std::thread;

fn main() {
    const K: usize = 5;
    banner("Figure 2: consensus from a k-shared asset-transfer object");

    let consensus = Arc::new(TransferConsensus::new(K, MutexAssetTransfer::new));
    let candidates = ["alice", "bob", "carol", "dave", "erin"];

    let handles: Vec<_> = (0..K)
        .map(|i| {
            let consensus = Arc::clone(&consensus);
            let proposal = candidates[i];
            thread::spawn(move || {
                let decided = consensus.propose(ProcessId::new(i as u32), proposal);
                (i, proposal, decided)
            })
        })
        .collect();

    let mut decisions = Vec::new();
    for handle in handles {
        let (i, proposed, decided) = handle.join().unwrap();
        println!("process p{i} proposed {proposed:8} -> decided {decided}");
        decisions.push(decided);
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement!");
    println!("=> all {K} processes agree, using only transfers and registers");
    println!("   (the paper's Lemma 1: k-shared asset transfer has consensus number >= k)");
}
