//! Scenario-driven engine demo: runs the standard scenario suite (six
//! benign workloads, four adversarial) on the sharded+batched payment
//! engine, contrasts the unsharded engine and the PBFT baseline on one
//! batched workload, then swaps the secure-broadcast backend under the
//! same scenario to show the message-complexity trade of Section 5.
//!
//! Run with `cargo run -p at-examples --example engine_scenarios --release`.

use at_engine::{
    format_reports, run_suite, BaselineEngine, BroadcastBackend, ConsensuslessEngine, Engine,
    EngineConfig, Scenario, ScenarioReport,
};
use at_examples::banner;
use at_net::VirtualTime;

fn main() {
    banner("standard scenario suite · consensusless-s4b8");
    let engine = ConsensuslessEngine::new(EngineConfig::standard());
    let reports = run_suite(&engine, 42);
    println!("{}", format_reports(&reports));
    let conflicts: usize = reports.iter().map(|r| r.conflicts).sum();
    println!();
    println!(
        "{} scenarios, {} adversarial or faulty, {} double spends applied (must be 0)",
        reports.len(),
        reports
            .iter()
            .filter(|r| r.scenario.contains("equivocator")
                || r.scenario.contains("overspender")
                || r.scenario.contains("silent")
                || r.scenario.contains("partition"))
            .count(),
        conflicts,
    );

    banner("engine line-up · uniform, 4 transfers/process/wave, n = 16");
    let scenario = Scenario::new("lineup-16", 16)
        .waves(3)
        .transfers_per_wave(4)
        .seed(42)
        .initial(at_model::Amount::new(1_000_000));
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(ConsensuslessEngine::new(EngineConfig::unsharded())),
        Box::new(ConsensuslessEngine::new(EngineConfig::sharded_batched(
            4,
            8,
            VirtualTime::from_micros(500),
        ))),
        Box::new(BaselineEngine::new(8)),
    ];
    println!("{}", ScenarioReport::table_header());
    for engine in &engines {
        println!("{}", engine.run(&scenario).table_row());
    }
    println!();
    println!(
        "Same protocol, same workload: batching transfers into shared broadcast \
         instances is what moves the message count — no consensus anywhere."
    );

    banner("broadcast backends · same scenario, swapped secure broadcast");
    let scenario = Scenario::new("backends-12", 12).waves(3).seed(42);
    println!("{}", ScenarioReport::table_header());
    let mut digests = Vec::new();
    for backend in [
        BroadcastBackend::Bracha,
        BroadcastBackend::signed_echo(),
        BroadcastBackend::account_order(),
    ] {
        let engine = ConsensuslessEngine::new(EngineConfig::standard().with_backend(backend));
        let report = engine.run(&scenario);
        digests.push(report.balance_digest);
        println!("{}", report.table_row());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "backends must converge to the same balances"
    );
    println!();
    println!(
        "The broadcast layer is swappable (Section 5): Bracha pays O(n²) messages \
         with zero signatures; signed echo and account-order pay O(n) sender \
         messages plus certificate signatures. Same workload, same final \
         balances, different cost profile — run `ablation_backend` for the \
         full T4 table."
    );
}
