//! A k-shared treasury (Section 6): an account owned by three processes,
//! sequenced by their own BFT group — consensus only among the owners,
//! never among all participants.
//!
//! Run with `cargo run -p at-examples --bin shared_account`.

use at_broadcast::auth::NoAuth;
use at_core::kshared::{KEvent, KSharedReplica};
use at_examples::banner;
use at_model::{AccountId, Amount, OwnerMap, ProcessId};
use at_net::{NetConfig, Simulation, VirtualTime};

fn main() {
    const N: usize = 6;
    let treasury = AccountId::new(0);

    banner("Section 6: a 3-owner shared treasury among 6 processes");
    let mut owners = OwnerMap::new();
    for i in 0..3 {
        owners.add_owner(treasury, ProcessId::new(i));
    }
    for i in 1..N {
        owners.add_owner(AccountId::new(i as u32), ProcessId::new(i as u32));
    }
    let initial: Vec<(AccountId, Amount)> = std::iter::once((treasury, Amount::new(1_000)))
        .chain((1..N).map(|i| (AccountId::new(i as u32), Amount::new(100))))
        .collect();
    let replicas = (0..N as u32)
        .map(|i| {
            KSharedReplica::new(
                ProcessId::new(i),
                N,
                initial.clone(),
                owners.clone(),
                NoAuth,
            )
        })
        .collect();
    let mut sim = Simulation::new(replicas, NetConfig::lan(7));

    // All three owners submit payouts concurrently; the owners' BFT group
    // sequences them, and everyone applies them in account order.
    for (owner, amount) in [(0u32, 400u64), (1, 400), (2, 400)] {
        sim.schedule(
            VirtualTime::ZERO,
            ProcessId::new(owner),
            move |replica, ctx| {
                let dest = AccountId::new(owner % (N as u32 - 1) + 1);
                replica.submit(AccountId::new(0), dest, Amount::new(amount), ctx);
            },
        );
    }
    sim.run_until_quiet(10_000_000);

    println!("three concurrent 400-unit payouts from a 1000-unit treasury:");
    for (at, _, event) in sim.take_events() {
        if let KEvent::Completed { transfer, success } = event {
            println!(
                "[{at}] {} -> {}: {}",
                transfer.originator,
                transfer.destination,
                if success {
                    "SUCCESS"
                } else {
                    "FAILED (insufficient at its sequence position)"
                }
            );
        }
    }
    let observer = sim.actor(ProcessId::new(5));
    println!("treasury balance everywhere: {}", observer.read(treasury));
    println!("=> exactly two payouts fit; the verdict is identical at every process");
}
