//! A payment network under attack: 10 processes, one of which attempts a
//! classic double spend by equivocating at the broadcast layer.
//!
//! The paper's point: no consensus is needed — the secure broadcast's
//! quorum intersection alone makes the double spend impossible, while
//! honest payments keep flowing.
//!
//! Run with `cargo run -p at-examples --bin payment_network`.

use at_core::byzantine::{MaliciousReplica, Participant};
use at_core::replica::TransferEvent;
use at_examples::banner;
use at_model::{AccountId, Amount, ProcessId};
use at_net::{NetConfig, Simulation, VirtualTime};

fn main() {
    const N: usize = 10;
    const EVE: u32 = 9;

    banner("Payment network: 9 honest processes + 1 double spender");
    let actors: Vec<Participant> = (0..N as u32)
        .map(|i| {
            if i == EVE {
                Participant::Equivocator(MaliciousReplica::new(
                    ProcessId::new(i),
                    N,
                    Amount::new(50),
                ))
            } else {
                Participant::honest(ProcessId::new(i), N, Amount::new(50))
            }
        })
        .collect();
    let mut sim = Simulation::new(actors, NetConfig::lan(2024));

    // Eve tries to pay her whole balance to BOTH account 0 and account 1.
    sim.schedule(VirtualTime::ZERO, ProcessId::new(EVE), |actor, ctx| {
        if let Participant::Equivocator(eve) = actor {
            println!("Eve equivocates: 50 to acct0 AND 50 to acct1, same seq");
            eve.equivocate(
                (AccountId::new(0), Amount::new(50)),
                (AccountId::new(1), Amount::new(50)),
                ctx,
            );
        }
    });
    // Meanwhile honest processes trade normally.
    for i in 0..8u32 {
        sim.schedule(
            VirtualTime::from_millis(1),
            ProcessId::new(i),
            move |actor, ctx| {
                if let Participant::Honest(replica) = actor {
                    replica.submit(AccountId::new((i + 1) % 9), Amount::new(10), ctx);
                }
            },
        );
    }
    sim.run_until_quiet(10_000_000);

    let mut honest_completed = 0;
    let mut eve_applied = 0;
    for (_, process, event) in sim.take_events() {
        match event {
            TransferEvent::Completed { .. } => honest_completed += 1,
            TransferEvent::Applied { transfer } if transfer.originator.index() == EVE => {
                eve_applied += 1;
                let _ = process;
            }
            _ => {}
        }
    }
    println!("honest transfers completed: {honest_completed}/8");
    println!(
        "legs of Eve's double spend applied anywhere: {eve_applied} (2 would be a double spend)"
    );
    let observer = sim.actor(ProcessId::new(0));
    println!(
        "acct0={}, acct1={}, Eve's acct9={}",
        observer.read(AccountId::new(0)),
        observer.read(AccountId::new(1)),
        observer.read(AccountId::new(9)),
    );
    assert!(eve_applied <= N as u64 as usize); // at most one leg, seen by each honest process once
    println!("=> double-spend prevented without any consensus");
}
