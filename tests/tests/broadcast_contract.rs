//! Satellite: the secure-broadcast backends' documented delivery
//! contract — per-source FIFO, gapless, exactly-once — holds for Bracha,
//! signed echo, and account-order under randomized drop, delay, and
//! partition faults.
//!
//! The contract is observed at the engine layer through
//! [`at_engine::EngineEvent::BackendDelivery`] events and checked with
//! [`at_engine::probe::check_fifo_contract`]: at every replica, each
//! source's delivered sequence numbers must read exactly `1, 2, 3, …`.
//! Lossy links may *shorten* a stream (an instance that never completes
//! everywhere), but nothing may ever be delivered out of order, twice,
//! or past a gap.

use at_broadcast::auth::NoAuth;
use at_broadcast::bracha::BrachaBroadcast;
use at_broadcast::echo::EchoBroadcast;
use at_broadcast::secure::{AccountOrderBackend, SecureBroadcast};
use at_engine::probe::{check_fifo_contract, TimedEvent};
use at_engine::{EngineConfig, EnginePayload, ShardedReplica};
use at_model::{AccountId, Amount, ProcessId};
use at_net::{LinkFault, NetConfig, Simulation, VirtualTime};
use proptest::prelude::*;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

/// One randomized fault plan: injected link faults plus an optional
/// partition window isolating the highest-id process.
#[derive(Clone, Debug)]
struct FaultPlan {
    seed: u64,
    /// `(from, to, drop_count, extra_delay_us)` per faulty link.
    links: Vec<(u32, u32, u64, u64)>,
    /// Whether a partition isolates `p(n-1)` during the second wave.
    partition: bool,
    /// Buffered (reliable-channel) or lossy partition.
    buffered: bool,
}

/// Runs two submission waves over backend endpoints from `make` under
/// `plan`, returning the engine event stream.
fn run_under_faults<B, F>(n: usize, plan: &FaultPlan, make: F) -> Vec<TimedEvent>
where
    B: SecureBroadcast<EnginePayload> + 'static,
    F: Fn(ProcessId) -> B,
{
    let replicas: Vec<ShardedReplica<B>> = (0..n as u32)
        .map(|i| {
            ShardedReplica::with_backend(
                p(i),
                n,
                Amount::new(100),
                EngineConfig::unsharded(),
                make(p(i)),
            )
        })
        .collect();
    let mut sim = Simulation::new(replicas, NetConfig::lan(plan.seed));
    for &(from, to, drops, delay_us) in &plan.links {
        if from != to {
            sim.inject_link_fault(
                p(from),
                p(to),
                LinkFault {
                    drop_next: drops,
                    extra_delay: VirtualTime::from_micros(delay_us),
                },
            );
        }
    }

    // Wave 1: everyone pays their neighbour.
    let n_u32 = n as u32;
    for i in 0..n_u32 {
        sim.schedule(VirtualTime::ZERO, p(i), move |replica, ctx| {
            replica.submit(a((i + 1) % n_u32), Amount::new(1), ctx);
        });
    }
    sim.run_until_quiet(10_000_000);

    // Wave 2, optionally under a partition that isolates the last
    // process.
    if plan.partition {
        let isolated = [p(n as u32 - 1)];
        let rest: Vec<ProcessId> = (0..n as u32 - 1).map(p).collect();
        if plan.buffered {
            sim.set_partition_buffered(&[&isolated, &rest]);
        } else {
            sim.set_partition(&[&isolated, &rest]);
        }
    }
    let now = sim.now();
    for i in 0..n_u32 {
        sim.schedule(now, p(i), move |replica, ctx| {
            replica.submit(a((i + 2) % n_u32), Amount::new(1), ctx);
        });
    }
    sim.run_until_quiet(10_000_000);
    // Reliable channels resume; a buffered partition releases its parked
    // messages through the (still installed) link faults.
    sim.heal_partition();
    assert!(sim.run_until_quiet(10_000_000), "run did not quiesce");
    sim.take_events()
}

fn assert_contract(events: &[TimedEvent], label: &str, plan: &FaultPlan) {
    if let Err(violation) = check_fifo_contract(events, |_| true) {
        panic!("{label} broke the delivery contract under {plan:?}: {violation}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The satellite requirement: random fault plans never produce an
    /// out-of-order, duplicated, or gapped delivery on any backend.
    #[test]
    fn fifo_exactly_once_holds_under_random_faults(
        seed in 0u64..100_000,
        from1 in 0u32..4,
        to1 in 0u32..4,
        drops1 in 0u64..5,
        delay1_us in 0u64..3_000,
        from2 in 0u32..4,
        to2 in 0u32..4,
        drops2 in 0u64..5,
        partition in 0u32..2,
        buffered in 0u32..2,
    ) {
        let n = 4;
        let plan = FaultPlan {
            seed,
            links: vec![
                (from1, to1, drops1, delay1_us),
                (from2, to2, drops2, 0),
            ],
            partition: partition == 1,
            buffered: buffered == 1,
        };
        let events = run_under_faults(n, &plan, |me| BrachaBroadcast::new(me, n));
        assert_contract(&events, "bracha", &plan);
        let events = run_under_faults(n, &plan, |me| EchoBroadcast::new(me, n, NoAuth));
        assert_contract(&events, "signed-echo", &plan);
        let events = run_under_faults(n, &plan, |me| AccountOrderBackend::new(me, n, NoAuth));
        assert_contract(&events, "account-order", &plan);
    }
}

/// A fault-free run delivers *everything* FIFO-exactly-once — the
/// contract check is not vacuous on a healthy system.
#[test]
fn clean_run_delivers_every_instance_in_order() {
    let n = 4;
    let plan = FaultPlan {
        seed: 7,
        links: vec![],
        partition: false,
        buffered: false,
    };
    for (label, events) in [
        (
            "bracha",
            run_under_faults(n, &plan, |me| BrachaBroadcast::new(me, n)),
        ),
        (
            "echo",
            run_under_faults(n, &plan, |me| EchoBroadcast::new(me, n, NoAuth)),
        ),
        (
            "acctorder",
            run_under_faults(n, &plan, |me| AccountOrderBackend::new(me, n, NoAuth)),
        ),
    ] {
        assert_contract(&events, label, &plan);
        let deliveries = events
            .iter()
            .filter(|(_, _, e)| matches!(e, at_engine::EngineEvent::BackendDelivery { .. }))
            .count();
        // 8 instances (2 per process), delivered at all 4 replicas.
        assert_eq!(deliveries, 32, "{label}: missing deliveries");
    }
}

/// A buffered partition with a mid-window equivocation attempt: after
/// the heal, every backend still converges with zero conflicts — parked
/// messages are delayed, never lost, and the certificate state formed
/// during the partition stays consistent.
#[test]
fn healing_mid_equivocation_converges_on_every_backend() {
    use at_engine::{Adversary, BroadcastBackend, ConsensuslessEngine, Engine, Fault, Scenario};
    let scenario = Scenario::new("heal-mid-equivocation", 8)
        .waves(5)
        .seed(29)
        .adversary(ProcessId::new(0), Adversary::Equivocate)
        .fault(Fault::Partition {
            groups: vec![
                vec![ProcessId::new(6), ProcessId::new(7)],
                (0..6).map(ProcessId::new).collect(),
            ],
            from_wave: 1,
            heal_wave: 3,
        });
    for backend in [
        BroadcastBackend::Bracha,
        BroadcastBackend::signed_echo(),
        BroadcastBackend::account_order(),
    ] {
        let report =
            ConsensuslessEngine::new(EngineConfig::standard().with_backend(backend)).run(&scenario);
        assert_eq!(report.conflicts, 0, "{backend:?}: double spend landed");
        assert!(report.agreed, "{backend:?}: replicas diverged after heal");
        assert!(report.supply_ok, "{backend:?}: supply violated");
        assert_eq!(
            report.completed,
            7 * scenario.waves,
            "{backend:?}: correct processes stalled"
        );
        assert_eq!(
            report.messages_dropped, 0,
            "{backend:?}: buffered partition lost messages"
        );
    }
}
