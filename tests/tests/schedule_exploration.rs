//! Integration tests of the `at-check` schedule explorer: the standard
//! check scenarios survive exploration on every production backend, and
//! exploration itself is deterministic. (The seeded-mutation catch is
//! feature-gated — `cargo test -p at-check --features broken` and CI's
//! `explore --smoke` gate cover it — so the deliberately broken hooks
//! stay out of default workspace builds.)

use at_check::{explore, standard_check_scenarios, CheckBackend, ExploreBudget};

/// Every standard scenario × every production backend: many distinct
/// interleavings, zero violations, zero budget-exhausted checks.
#[test]
fn standard_scenarios_survive_exploration_on_every_backend() {
    let budget = ExploreBudget::quick();
    for scenario in &standard_check_scenarios() {
        for backend in CheckBackend::all() {
            let report = explore(scenario, backend, &budget);
            assert!(
                report.violations.is_empty(),
                "{} on {}:\n{}",
                scenario.name,
                backend.label(),
                report.violations[0]
            );
            assert_eq!(report.unknown, 0, "{}/{}", scenario.name, backend.label());
            assert!(
                report.distinct_schedules >= 4,
                "{}/{}: only {} distinct schedules",
                scenario.name,
                backend.label(),
                report.distinct_schedules
            );
        }
    }
}

/// Exploring the same scenario twice under the same budget yields the
/// same schedules and the same verdicts — counterexamples replay.
#[test]
fn exploration_is_deterministic() {
    let scenario = &standard_check_scenarios()[0];
    let budget = ExploreBudget::quick();
    let first = explore(scenario, CheckBackend::Bracha, &budget);
    let second = explore(scenario, CheckBackend::Bracha, &budget);
    assert_eq!(first.executions, second.executions);
    assert_eq!(first.distinct_schedules, second.distinct_schedules);
    assert_eq!(first.violations.len(), second.violations.len());
}
