//! Chaos satellites: gateway fuzzing against a live node, deterministic
//! nemesis replay on the channel mesh, and the loadgen-under-loss
//! regression — all on real clusters (threads, wall clocks, and, for
//! the TCP cases, sockets).

use at_broadcast::auth::NoAuth;
use at_broadcast::echo::EchoBroadcast;
use at_chaos::{
    format_nemesis_schedule, run_seeded, run_with_schedule, ChaosConfig, ChaosReport,
    ChaosTransport, NemesisChoice,
};
use at_engine::replica::EnginePayload;
use at_engine::EngineConfig;
use at_model::{AccountId, Amount};
use at_net::VirtualTime;
use at_node::wire::{encode_frame, Frame, MAX_FRAME_LEN, WIRE_VERSION};
use at_node::{start_tcp_cluster, Client, NodeConfig, ResponseBody, TcpOptions};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

type Echo = EchoBroadcast<EnginePayload, NoAuth>;

fn node_config() -> NodeConfig {
    NodeConfig::new(
        EngineConfig::sharded_batched(4, 16, VirtualTime::from_micros(500)),
        Amount::new(1_000),
    )
    // Always-on tracing, so the trace leg of the serving oracle has
    // events to scrape (and the fuzzed node exercises the traced path).
    .with_trace(at_obs::TraceConfig::always())
}

/// Submits one transfer through a fresh, well-formed client and expects
/// the commit acknowledgement, then scrapes the node's metrics over the
/// same connection — the "gateway still alive and serving (introspection
/// plane included)" oracle between fuzz volleys.
fn assert_gateway_serves(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("well-formed client connects");
    client
        .submit_transfer(AccountId::new(1), Amount::new(1))
        .expect("submit");
    let ack = client
        .recv_response(Duration::from_secs(20))
        .expect("io")
        .expect("ack before timeout");
    assert!(
        matches!(ack.body, ResponseBody::Committed { .. }),
        "expected commit, got {ack:?}"
    );
    let snapshot = client
        .stats(Duration::from_secs(10))
        .expect("stats round-trip over the fuzzed gateway");
    assert!(
        snapshot.counter("node_committed_total").unwrap_or(0) >= 1,
        "scraped metrics must reflect the commit just acknowledged"
    );
    let log = client
        .trace(Duration::from_secs(10))
        .expect("trace round-trip over the fuzzed gateway");
    assert!(
        !log.events.is_empty(),
        "always-on tracing must have recorded the commit just acknowledged"
    );
}

/// Satellite: malformed / truncated / oversized / wrong-version client
/// frames against a live gateway never panic the node, never stall its
/// event loop, and leave subsequent well-formed requests serviceable.
#[test]
fn gateway_survives_hostile_client_frames() {
    let n = 3;
    let mut cluster = start_tcp_cluster(n, node_config(), TcpOptions::default(), |me| {
        Echo::new(me, n, NoAuth)
    })
    .expect("cluster");
    let addr = cluster.client_addrs[0];

    // An oversized length prefix (the classic allocation bomb).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
    drop(conn);

    // A truncated frame: declares 50 body bytes, delivers 5, hangs up.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&50u32.to_le_bytes()).unwrap();
    conn.write_all(&[WIRE_VERSION, 5, 0, 0, 0]).unwrap();
    drop(conn);

    // A wrong version byte on an otherwise valid handshake.
    let mut bytes = encode_frame(&Frame::HelloClient);
    bytes[4] = WIRE_VERSION + 1;
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&bytes).unwrap();
    drop(conn);

    // A peer-protocol frame on the client port (kind confusion).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloNode {
        node: at_model::ProcessId::new(0),
        epoch: 1,
    }))
    .unwrap();
    drop(conn);

    // A valid handshake followed by a request with an unknown op tag.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    let body = vec![WIRE_VERSION, 5, 9, 9, 9, 9, 9, 9, 9, 9, 0xFF];
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    conn.write_all(&framed).unwrap();
    drop(conn);

    // A stats request before any handshake (introspection is for
    // greeted clients only — must be ignored, not served or panicked).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::StatsRequest { id: 7 }))
        .unwrap();
    drop(conn);

    // A truncated stats request: valid handshake, kind byte 7, id cut
    // short mid-field.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    let body = vec![WIRE_VERSION, 7, 1, 2, 3];
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    conn.write_all(&framed).unwrap();
    drop(conn);

    // A client pushing a StatsResponse — the server-to-client kind — at
    // the gateway (direction confusion).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    conn.write_all(&encode_frame(&Frame::StatsResponse {
        id: 9,
        snapshot: at_obs::Snapshot::default(),
    }))
    .unwrap();
    drop(conn);

    // A trace request before any handshake (the trace scrape plane is
    // for greeted clients only — ignored, not served or panicked).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::TraceRequest { id: 11 }))
        .unwrap();
    drop(conn);

    // A truncated trace request: valid handshake, kind byte 9, id cut
    // short mid-field.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    let body = vec![WIRE_VERSION, 9, 4, 5];
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    conn.write_all(&framed).unwrap();
    drop(conn);

    // A client pushing a TraceResponse — the server-to-client kind — at
    // the gateway (direction confusion on the trace plane).
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    conn.write_all(&encode_frame(&Frame::TraceResponse {
        id: 13,
        log: at_obs::TraceLog::default(),
    }))
    .unwrap();
    drop(conn);

    // A slow client that never completes its frame, held open across
    // the liveness check: its reader thread must not block the loop.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.write_all(&encode_frame(&Frame::HelloClient)).unwrap();
    idle.write_all(&100u32.to_le_bytes()).unwrap();

    // After every volley — and with the stalled connection still open —
    // a well-formed client is served normally.
    assert_gateway_serves(addr);
    drop(idle);

    let handles: Vec<_> = cluster.running().collect();
    let reports =
        at_node::await_convergence(&handles, Duration::from_secs(20)).expect("convergence");
    for report in &reports {
        assert_eq!(report.dropped_frames, 0);
    }
    drop(handles);
    cluster.stop_all();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random byte soup at the gateway: no panic, no stall, and the
    /// next well-formed client still gets its transfer committed.
    #[test]
    fn gateway_survives_random_client_bytes(blob in prop::collection::vec(any::<u8>(), 1..256)) {
        let n = 2;
        let mut cluster = start_tcp_cluster(n, node_config(), TcpOptions::default(), |me| {
            Echo::new(me, n, NoAuth)
        })
        .expect("cluster");
        let addr = cluster.client_addrs[0];
        let mut conn = TcpStream::connect(addr).unwrap();
        let _ = conn.write_all(&blob);
        drop(conn);
        // Junk *after* a valid handshake, too.
        let mut conn = TcpStream::connect(addr).unwrap();
        let _ = conn.write_all(&encode_frame(&Frame::HelloClient));
        let _ = conn.write_all(&blob);
        drop(conn);
        assert_gateway_serves(addr);
        cluster.stop_all();
    }
}

fn mesh_run(seed: u64) -> ChaosReport {
    let config = ChaosConfig {
        quota: 25,
        disruptions: 3,
        drain_timeout: Duration::from_secs(20),
        ..ChaosConfig::default()
    };
    run_seeded(&config, "echo", ChaosTransport::Mesh, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite: a recorded nemesis schedule replays deterministically
    /// on the channel mesh — same seed + schedule ⇒ byte-identical
    /// final balances — and `dropped_frames() == 0` after every
    /// heal-and-drain (no injected fault ever turns into real loss).
    #[test]
    fn nemesis_schedules_replay_deterministically_on_mesh(seed in 0u64..10_000) {
        let first = mesh_run(seed);
        let second = mesh_run(seed);
        prop_assert_eq!(&first.schedule, &second.schedule, "schedule not pure in the seed");
        prop_assert!(
            first.violations.is_empty() && second.violations.is_empty(),
            "schedule {}: {:?} / {:?}",
            format_nemesis_schedule(&first.schedule),
            first.violations,
            second.violations
        );
        prop_assert!(first.converged && second.converged);
        prop_assert_eq!(first.dropped_frames, 0);
        prop_assert_eq!(second.dropped_frames, 0);
        prop_assert_eq!(&first.balances, &second.balances, "balances diverged across replays");
        prop_assert_eq!(first.digest, second.digest);
    }
}

/// Satellite: the T5-style closed-loop loadgen still converges with
/// every acknowledgement resolved (Committed or Rejected, none lost)
/// under 5% wire loss on every link plus one forced disconnect.
#[test]
fn loadgen_under_loss_resolves_every_ack() {
    let n = 4;
    let mut schedule = Vec::new();
    for from in 0..n as u32 {
        for to in 0..n as u32 {
            if from != to {
                schedule.push(NemesisChoice::Degrade {
                    from,
                    to,
                    drop_pct: 5,
                    dup_pct: 0,
                    delay_us: 0,
                });
            }
        }
    }
    schedule.push(NemesisChoice::Run { ms: 150 });
    schedule.push(NemesisChoice::Disconnect { from: 1, to: 2 });
    schedule.push(NemesisChoice::Run { ms: 150 });
    schedule.push(NemesisChoice::Heal);
    schedule.push(NemesisChoice::Run { ms: 100 });

    let config = ChaosConfig {
        n,
        quota: 80,
        drain_timeout: Duration::from_secs(30),
        ..ChaosConfig::default()
    };
    let report = run_with_schedule(&config, "echo", ChaosTransport::Tcp, 0xBEEF, &schedule);
    assert!(
        report.violations.is_empty(),
        "violations under loss: {:?}",
        report.violations
    );
    assert!(report.converged, "no convergence under 5% loss");
    assert_eq!(
        report.dropped_frames, 0,
        "loss leaked below the replay layer"
    );
    assert_eq!(report.unresolved, 0, "acknowledgements were lost");
    assert_eq!(
        report.submitted,
        report.committed + report.rejected,
        "transfers stranded without an acknowledgement"
    );
    assert_eq!(report.submitted, (n * config.quota) as u64);
}
