//! Integration tests for the shared-memory results (experiments F1–F3):
//! the figure algorithms composed together and checked against the
//! sequential specification by the linearizability checker.

use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId};
use at_sharedmem::figure1::SnapshotAssetTransfer;
use at_sharedmem::figure2::TransferConsensus;
use at_sharedmem::figure3::KSharedAssetTransfer;
use at_sharedmem::harness::{
    assert_linearizable, run_shared_account_workload, run_uniform_workload, WorkloadConfig,
};
use at_sharedmem::object::{MutexAssetTransfer, SharedAssetTransfer};
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

fn amt(x: u64) -> Amount {
    Amount::new(x)
}

/// F1: Figure 1 (wait-free snapshot object) stays linearizable across many
/// seeds and heavier thread counts.
#[test]
fn figure1_linearizable_across_seeds() {
    for seed in 0..12 {
        let config = WorkloadConfig {
            processes: 4,
            ops_per_process: 5,
            initial_balance: amt(12),
            max_amount: 8,
            read_percent: 40,
            seed,
        };
        let object = Arc::new(SnapshotAssetTransfer::wait_free_uniform(
            config.processes,
            config.initial_balance,
        ));
        let (history, initial) = run_uniform_workload(object, &config);
        assert_linearizable(&history, &initial);
    }
}

/// F1 (scale): total supply is conserved under a large concurrent
/// workload on the wait-free object.
#[test]
fn figure1_conserves_supply_at_scale() {
    const N: usize = 8;
    const OPS: u64 = 200;
    let object = Arc::new(SnapshotAssetTransfer::wait_free_uniform(N, amt(1_000)));
    let handles: Vec<_> = (0..N as u32)
        .map(|i| {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                for round in 0..OPS {
                    let dest = a((i + 1 + (round % 3) as u32) % N as u32);
                    object.transfer(p(i), a(i), dest, amt(round % 11));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let total: Amount = (0..N as u32).map(|i| object.read(a(i))).sum();
    assert_eq!(total, amt(1_000 * N as u64));
}

/// F2 composed with F3 — the full circle of Theorem 2: consensus built
/// from a k-shared asset-transfer object that is *itself* built from
/// k-consensus objects.
#[test]
fn consensus_from_figure3_object() {
    for trial in 0..10 {
        let k = 4;
        let consensus = Arc::new(TransferConsensus::new(k, |ledger| {
            let owners = ledger.owners().clone();
            let balances: Vec<_> = ledger.iter().collect();
            KSharedAssetTransfer::new(k, balances, owners)
        }));
        let handles: Vec<_> = (0..k as u32)
            .map(|i| {
                let consensus = Arc::clone(&consensus);
                thread::spawn(move || consensus.propose(p(i), format!("value-{i}")))
            })
            .collect();
        let decisions: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let unique: HashSet<&String> = decisions.iter().collect();
        assert_eq!(unique.len(), 1, "trial {trial}: {decisions:?}");
        assert!(decisions[0].starts_with("value-"));
    }
}

/// F3: Figure 3's object is linearizable on a shared account under
/// concurrent owners.
#[test]
fn figure3_linearizable_across_seeds() {
    for seed in 0..10 {
        let k = 3;
        let shared = a(0);
        let sink = a(1);
        let mut owners = OwnerMap::new();
        for process in ProcessId::all(k) {
            owners.add_owner(shared, process);
        }
        owners.add_unowned(sink);
        let object = Arc::new(KSharedAssetTransfer::new(k, [(shared, amt(20))], owners));
        let (history, initial) = run_shared_account_workload(object, k, 6, amt(20), seed);
        assert_linearizable(&history, &initial);
    }
}

/// Cross-implementation differential test: the same seeded workload on
/// Figure 1 and on the mutex reference object both linearize against the
/// same initial state.
#[test]
fn figure1_and_reference_agree_on_linearizability() {
    for seed in 100..106 {
        let config = WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        };
        let wait_free = Arc::new(SnapshotAssetTransfer::wait_free_uniform(
            config.processes,
            config.initial_balance,
        ));
        let (history, initial) = run_uniform_workload(wait_free, &config);
        assert_linearizable(&history, &initial);

        let reference = Arc::new(MutexAssetTransfer::new(Ledger::uniform(
            config.processes,
            config.initial_balance,
        )));
        let (history, initial) = run_uniform_workload(reference, &config);
        assert_linearizable(&history, &initial);
    }
}

/// Figure 2's exact-balance trick on Figure 3's object: with balance `2k`
/// and withdrawals `2k − p`, exactly one withdrawal wins.
#[test]
fn figure2_core_invariant_on_figure3_object() {
    for trial in 0..8 {
        let k = 5;
        let shared = a(0);
        let sink = a(1);
        let mut owners = OwnerMap::new();
        for process in ProcessId::all(k) {
            owners.add_owner(shared, process);
        }
        owners.add_unowned(sink);
        let object = Arc::new(KSharedAssetTransfer::new(
            k,
            [(shared, amt(2 * k as u64))],
            owners,
        ));
        let handles: Vec<_> = (0..k as u32)
            .map(|i| {
                let object = Arc::clone(&object);
                thread::spawn(move || {
                    object.transfer(p(i), shared, sink, amt(2 * k as u64 - (i as u64 + 1)))
                })
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(wins, 1, "trial {trial}");
        let residue = object.read(shared).units();
        assert!((1..=k as u64).contains(&residue));
    }
}
