//! Integration tests for the Section 6 system (experiment S6): `k`-shared
//! accounts in message passing — owner-group BFT sequencing composed with
//! the account-order broadcast, across crate boundaries.

use at_broadcast::auth::NoAuth;
use at_core::kshared::{KEvent, KSharedReplica};
use at_model::{AccountId, Amount, OwnerMap, ProcessId};
use at_net::{NetConfig, Simulation, VirtualTime};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

fn amt(x: u64) -> Amount {
    Amount::new(x)
}

/// Builds a system with two shared accounts (0: owners 0-2, 1: owners
/// 3-4) plus singly-owned accounts for everyone.
fn two_treasuries(n: usize, seed: u64) -> Simulation<KSharedReplica<NoAuth>> {
    let mut owners = OwnerMap::new();
    for i in 0..3 {
        owners.add_owner(a(0), p(i));
    }
    for i in 3..5 {
        owners.add_owner(a(1), p(i));
    }
    for i in 0..n {
        owners.add_owner(a(10 + i as u32), p(i as u32));
    }
    let initial: Vec<(AccountId, Amount)> = [(a(0), amt(300)), (a(1), amt(200))]
        .into_iter()
        .chain((0..n).map(|i| (a(10 + i as u32), amt(50))))
        .collect();
    let replicas = (0..n as u32)
        .map(|i| KSharedReplica::new(p(i), n, initial.clone(), owners.clone(), NoAuth))
        .collect();
    Simulation::new(replicas, NetConfig::lan(seed))
}

fn successes(events: Vec<(VirtualTime, ProcessId, KEvent)>) -> usize {
    events
        .iter()
        .filter(|(_, _, e)| matches!(e, KEvent::Completed { success: true, .. }))
        .count()
}

#[test]
fn two_shared_accounts_operate_independently() {
    let mut sim = two_treasuries(6, 3);
    // Owners of both treasuries spend concurrently.
    sim.schedule(VirtualTime::ZERO, p(0), |replica, ctx| {
        replica.submit(a(0), a(11), amt(100), ctx);
    });
    sim.schedule(VirtualTime::ZERO, p(2), |replica, ctx| {
        replica.submit(a(0), a(12), amt(100), ctx);
    });
    sim.schedule(VirtualTime::ZERO, p(3), |replica, ctx| {
        replica.submit(a(1), a(13), amt(150), ctx);
    });
    assert!(sim.run_until_quiet(10_000_000));
    assert_eq!(successes(sim.take_events()), 3);
    for i in 0..6u32 {
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(100), "replica {i}");
        assert_eq!(sim.actor(p(i)).read(a(1)), amt(50), "replica {i}");
        assert_eq!(sim.actor(p(i)).observed_balance(a(13)), amt(200));
    }
}

#[test]
fn money_flows_between_shared_and_private_accounts() {
    let mut sim = two_treasuries(6, 7);
    // Private account funds treasury 0; later treasury 0 pays out more
    // than its initial balance would allow.
    sim.schedule(VirtualTime::ZERO, p(5), |replica, ctx| {
        replica.submit(a(15), a(0), amt(50), ctx);
    });
    sim.schedule(VirtualTime::from_millis(200), p(1), |replica, ctx| {
        replica.submit(a(0), a(10), amt(340), ctx); // 300 + 50 incoming
    });
    assert!(sim.run_until_quiet(10_000_000));
    assert_eq!(successes(sim.take_events()), 2);
    for i in 0..6u32 {
        assert_eq!(sim.actor(p(i)).observed_balance(a(0)), amt(10));
        assert_eq!(sim.actor(p(i)).observed_balance(a(10)), amt(390));
    }
}

#[test]
fn sequencing_is_fair_across_owners_under_load() {
    let mut sim = two_treasuries(6, 11);
    for round in 0..4u64 {
        for owner in 0..3u32 {
            sim.schedule(
                VirtualTime::from_millis(round * 50),
                p(owner),
                move |replica, ctx| {
                    replica.submit(a(0), a(14), amt(10), ctx);
                },
            );
        }
    }
    assert!(sim.run_until_quiet(50_000_000));
    let events = sim.take_events();
    assert_eq!(successes(events), 12);
    for i in 0..6u32 {
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(300 - 120), "replica {i}");
        assert_eq!(sim.actor(p(i)).observed_balance(a(14)), amt(50 + 120));
    }
}

#[test]
fn overdraft_verdicts_are_identical_everywhere() {
    let mut sim = two_treasuries(6, 13);
    // Three owners race for 150 each from a 300 treasury: exactly two win.
    for owner in 0..3u32 {
        sim.schedule(VirtualTime::ZERO, p(owner), move |replica, ctx| {
            replica.submit(a(0), a(10 + owner), amt(150), ctx);
        });
    }
    assert!(sim.run_until_quiet(10_000_000));
    let events = sim.take_events();
    let wins = successes(events.clone());
    assert_eq!(wins, 2);
    // The Applied verdicts agree across replicas: collect (transfer id,
    // verdict) per replica and compare.
    use std::collections::BTreeMap;
    let mut per_replica: BTreeMap<ProcessId, BTreeMap<String, bool>> = BTreeMap::new();
    for (_, at, event) in events {
        if let KEvent::Applied { transfer, success } = event {
            per_replica
                .entry(at)
                .or_default()
                .insert(transfer.to_string(), success);
        }
    }
    let reference = per_replica.values().next().unwrap().clone();
    for (replica, verdicts) in &per_replica {
        assert_eq!(verdicts, &reference, "verdicts diverged at {replica}");
    }
    for i in 0..6u32 {
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(0), "replica {i}");
    }
}

#[test]
fn crashed_nonleader_owner_does_not_block_the_account() {
    let mut sim = two_treasuries(6, 17);
    // With 3 owners, f = ⌊(3−1)/3⌋ = 0 and the sequencing quorum is
    // 2f+1 = 1: a crashed non-leader owner (the group leader of view 0 is
    // p0) leaves the treasury fully live for the remaining owners.
    sim.crash(p(2));
    sim.schedule(VirtualTime::ZERO, p(0), |replica, ctx| {
        replica.submit(a(0), a(11), amt(10), ctx);
    });
    // Private accounts are unaffected regardless.
    sim.schedule(VirtualTime::ZERO, p(5), |replica, ctx| {
        replica.submit(a(15), a(14), amt(10), ctx);
    });
    assert!(sim.run_until_quiet(10_000_000));
    let events = sim.take_events();
    let completed_accounts: Vec<AccountId> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            KEvent::Completed {
                transfer,
                success: true,
            } => Some(transfer.source),
            _ => None,
        })
        .collect();
    assert!(completed_accounts.contains(&a(15)));
    assert!(completed_accounts.contains(&a(0)));
    // All live replicas agree on the treasury balance.
    for i in [0u32, 1, 3, 4, 5] {
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(290), "replica {i}");
    }
}

#[test]
fn crashed_leader_owner_blocks_only_that_account() {
    let mut sim = two_treasuries(6, 19);
    // The owner-group leader (p0 in view 0) crashes: with no view-change
    // timer wired for the per-account sequencer, treasury 0 blocks — but
    // nothing forks, and every other account keeps working (the Section 6
    // isolation property).
    sim.crash(p(0));
    sim.schedule(VirtualTime::ZERO, p(1), |replica, ctx| {
        replica.submit(a(0), a(11), amt(10), ctx);
    });
    sim.schedule(VirtualTime::ZERO, p(3), |replica, ctx| {
        replica.submit(a(1), a(13), amt(10), ctx);
    });
    sim.schedule(VirtualTime::ZERO, p(5), |replica, ctx| {
        replica.submit(a(15), a(14), amt(10), ctx);
    });
    assert!(sim.run_until_quiet(10_000_000));
    let events = sim.take_events();
    let completed_accounts: Vec<AccountId> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            KEvent::Completed {
                transfer,
                success: true,
            } => Some(transfer.source),
            _ => None,
        })
        .collect();
    assert!(!completed_accounts.contains(&a(0)), "treasury 0 is blocked");
    assert!(completed_accounts.contains(&a(1)), "treasury 1 unaffected");
    assert!(completed_accounts.contains(&a(15)), "private unaffected");
    for i in [1u32, 2, 3, 4, 5] {
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(300), "no partial effects");
    }
}
