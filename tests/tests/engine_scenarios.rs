//! Integration tests of the `at-engine` scenario subsystem: Byzantine
//! double-spend rejection through the scenario DSL, fault-schedule
//! behaviour, and cross-engine agreement on the standard suite.

use at_broadcast::bracha::BrachaBroadcast;
use at_engine::{
    Adversary, BroadcastBackend, ConsensuslessEngine, Engine, EngineActor, EngineConfig,
    EngineEvent, Fault, NetProfile, Scenario, Workload,
};
use at_model::{AccountId, Amount, ProcessId, Transfer};
use at_net::{NetConfig, Simulation, VirtualTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

/// The satellite requirement: an equivocating sender scenario, built with
/// the DSL, in which no correct replica applies both conflicting
/// transfers — on the unsharded and the sharded+batched engine alike.
#[test]
fn equivocating_sender_cannot_double_spend() {
    let scenario = Scenario::new("double-spend", 8)
        .waves(4)
        .seed(33)
        .adversary(p(0), Adversary::Equivocate);

    for config in [EngineConfig::unsharded(), EngineConfig::standard()] {
        let report = ConsensuslessEngine::new(config).run(&scenario);
        // No (source, seq) pair resolved to two different transfers at
        // two correct replicas — the double spend never lands.
        assert_eq!(report.conflicts, 0, "{config:?}");
        assert!(report.agreed, "{config:?}: correct replicas diverged");
        assert!(report.supply_ok, "{config:?}: supply violated");
        // The seven correct processes make full progress regardless.
        assert_eq!(report.completed, 7 * scenario.waves, "{config:?}");
    }
}

/// The same attack, inspected replica-by-replica: every correct replica
/// ends with an *empty* applied set for the equivocator (neither half of
/// the split broadcast can gather an echo quorum), and whatever any
/// replica applies per (source, seq) is unique across the system.
#[test]
fn equivocation_applied_sets_are_conflict_free() {
    let n = 8;
    let initial = Amount::new(100);
    let scenario = Scenario::new("inspect", n)
        .seed(5)
        .adversary(p(0), Adversary::Equivocate);

    let actors: Vec<EngineActor> = (0..n as u32)
        .map(|i| match scenario.adversary_of(p(i)) {
            Some(Adversary::Equivocate) => EngineActor::equivocator(
                p(i),
                n,
                initial,
                EngineConfig::unsharded(),
                BrachaBroadcast::new(p(i), n),
            ),
            _ => EngineActor::honest(
                p(i),
                n,
                initial,
                EngineConfig::unsharded(),
                BrachaBroadcast::new(p(i), n),
            ),
        })
        .collect();
    let mut sim = Simulation::new(actors, scenario.net.config(scenario.seed));
    for wave in 0..3 {
        sim.schedule(sim.now(), p(0), move |actor, ctx| actor.attack(wave, ctx));
        assert!(sim.run_until_quiet(10_000_000));
    }

    let mut union: BTreeSet<Transfer> = BTreeSet::new();
    for i in 1..n as u32 {
        let replica = sim.actor(p(i)).as_honest().expect("correct");
        let applied = replica.applied_from(p(0));
        assert!(
            applied.is_empty(),
            "replica {i} applied {} equivocated transfers",
            applied.len()
        );
        union.extend(applied.values().copied());
        // Funds never moved.
        let total: Amount = (0..n as u32).map(|j| replica.balance(a(j))).sum();
        assert_eq!(total, Amount::new(100 * n as u64));
    }
    assert!(union.is_empty());
}

/// An overspender is delivered everywhere but validates nowhere.
#[test]
fn overspender_scenario_rejected_by_every_replica() {
    let scenario = Scenario::new("overspend", 6)
        .waves(3)
        .seed(8)
        .adversary(p(2), Adversary::Overspend);
    let report = ConsensuslessEngine::new(EngineConfig::standard()).run(&scenario);
    assert_eq!(report.conflicts, 0);
    assert!(report.agreed && report.supply_ok);
    assert_eq!(report.completed, 5 * scenario.waves);
}

/// The satellite requirement — replayability: running any standard-suite
/// scenario twice with the same seed yields *identical* `SuiteReport`s
/// (every field, and the rendered table byte for byte), on every backend
/// and on the PBFT baseline. This is the property the schedule explorer
/// depends on: hidden nondeterminism (HashMap iteration order, ambient
/// randomness) would surface here as a diff before it could corrupt a
/// replayed counterexample.
#[test]
fn standard_suite_reruns_are_byte_identical() {
    use at_engine::{format_reports, run_suite, BaselineEngine};
    for backend in [
        BroadcastBackend::Bracha,
        BroadcastBackend::signed_echo(),
        BroadcastBackend::account_order(),
    ] {
        let engine = ConsensuslessEngine::new(EngineConfig::standard().with_backend(backend));
        let first = run_suite(&engine, 19);
        let second = run_suite(&engine, 19);
        assert_eq!(
            first, second,
            "{backend:?}: suite reports differ across reruns"
        );
        assert_eq!(
            format_reports(&first),
            format_reports(&second),
            "{backend:?}: rendered suite tables differ across reruns"
        );
    }
    let baseline = BaselineEngine::default();
    assert_eq!(run_suite(&baseline, 19), run_suite(&baseline, 19));
}

/// Link faults from the DSL reach the simulator: dropped messages are
/// counted, and a delayed link stretches the run.
#[test]
fn link_faults_shape_the_run() {
    let benign = Scenario::new("benign", 5)
        .waves(2)
        .seed(4)
        .net(NetProfile::Instant);
    let lossy = benign
        .clone()
        .fault(Fault::DropLink {
            from: p(0),
            to: p(1),
            count: 2,
        })
        .fault(Fault::DelayLink {
            from: p(1),
            to: p(2),
            extra_micros: 40_000,
        })
        // Composes with the DropLink on the same directed link: the
        // first two messages drop, the survivors are delayed.
        .fault(Fault::DelayLink {
            from: p(0),
            to: p(1),
            extra_micros: 40_000,
        });

    let engine = ConsensuslessEngine::new(EngineConfig::unsharded());
    let clean = engine.run(&benign);
    let faulted = engine.run(&lossy);
    assert_eq!(clean.messages_dropped, 0);
    assert_eq!(faulted.messages_dropped, 2);
    assert!(faulted.duration_us > clean.duration_us);
    // Bracha masks two dropped messages: everyone still completes.
    assert_eq!(faulted.completed, clean.completed);
    assert!(faulted.agreed && faulted.supply_ok);
}

/// Partitions model the paper's reliable channels: cross-group messages
/// are parked, not lost, and re-injected at heal time — so the isolated
/// process catches up and every replica converges, with zero drops.
#[test]
fn partitioned_minority_catches_up_after_heal() {
    let scenario = Scenario::new("partition", 7)
        .waves(4)
        .seed(10)
        .fault(Fault::Partition {
            groups: vec![vec![p(6)], (0..6).map(p).collect()],
            from_wave: 1,
            heal_wave: 3,
        });
    for backend in [BroadcastBackend::Bracha, BroadcastBackend::signed_echo()] {
        let report = ConsensuslessEngine::new(EngineConfig::unsharded().with_backend(backend))
            .run(&scenario);
        assert_eq!(report.messages_dropped, 0, "{backend:?}");
        assert_eq!(report.conflicts, 0, "{backend:?}");
        assert!(report.supply_ok, "{backend:?}");
        // Everyone — including p6, whose in-window submissions stall until
        // the heal releases the parked traffic — completes every transfer
        // and converges.
        assert_eq!(report.completed, 7 * scenario.waves, "{backend:?}");
        assert!(report.agreed, "{backend:?}: diverged after heal");
    }
}

/// Benign scenarios complete identically across both engines (same
/// workload coins, same closed-loop count), and reports are reproducible.
#[test]
fn engines_agree_on_benign_workload_counts() {
    let scenario = Scenario::new("hotspot", 6)
        .waves(3)
        .seed(19)
        .workload(Workload::HotSpot {
            hot: a(1),
            percent_hot: 50,
        });
    let consensusless = ConsensuslessEngine::new(EngineConfig::standard()).run(&scenario);
    let baseline = at_engine::BaselineEngine::new(8).run(&scenario);
    assert_eq!(consensusless.completed, 6 * scenario.waves);
    assert_eq!(baseline.completed, 6 * scenario.waves);
    assert!(consensusless.agreed && baseline.agreed);
    assert_eq!(
        ConsensuslessEngine::new(EngineConfig::standard()).run(&scenario),
        consensusless
    );
}

/// Batch windows interact correctly with wave boundaries: a window wider
/// than a wave still flushes everything by quiescence.
#[test]
fn wide_batch_window_still_drains() {
    let scenario = Scenario::new("wide-window", 4)
        .waves(2)
        .transfers_per_wave(3)
        .seed(2);
    let config = EngineConfig::sharded_batched(2, 64, VirtualTime::from_millis(5));
    let report = ConsensuslessEngine::new(config).run(&scenario);
    assert_eq!(report.completed, 4 * 2 * 3);
    assert!(report.agreed && report.supply_ok);
}

/// Smoke check used by the event plumbing: completion events carry the
/// original transfer.
#[test]
fn completion_events_carry_transfers() {
    let n = 3;
    let actors: Vec<EngineActor> = (0..n as u32)
        .map(|i| {
            EngineActor::honest(
                p(i),
                n,
                Amount::new(50),
                EngineConfig::unsharded(),
                BrachaBroadcast::new(p(i), n),
            )
        })
        .collect();
    let mut sim = Simulation::new(actors, NetConfig::lan(1));
    sim.schedule(VirtualTime::ZERO, p(0), |actor, ctx| {
        actor.submit(a(2), Amount::new(7), ctx);
    });
    assert!(sim.run_until_quiet(1_000_000));
    let completed: Vec<Transfer> = sim
        .take_events()
        .into_iter()
        .filter_map(|(_, _, e)| match e {
            EngineEvent::Completed { transfer } => Some(transfer),
            _ => None,
        })
        .collect();
    assert_eq!(completed.len(), 1);
    assert_eq!(completed[0].amount, Amount::new(7));
    assert_eq!(completed[0].destination, a(2));
}

/// The three broadcast backends the engine supports, over the standard
/// sharded+batched configuration.
fn backend_lineup() -> [BroadcastBackend; 3] {
    [
        BroadcastBackend::Bracha,
        BroadcastBackend::signed_echo(),
        BroadcastBackend::account_order(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The satellite requirement — backend equivalence: for the same
    /// seeded scenario (benign uniform and equivocating alike), all three
    /// backends deliver the same completions and the same final balances,
    /// with zero conflicts and full agreement.
    #[test]
    fn backends_are_equivalent_on_seeded_scenarios(
        n in 4usize..7,
        waves in 1usize..3,
        seed in 0u64..1_000,
        equivocate in 0u32..2,
    ) {
        let mut scenario = Scenario::new("equiv", n).waves(waves).seed(seed);
        if equivocate == 1 {
            scenario = scenario.adversary(p(0), Adversary::Equivocate);
        }
        let mut reference: Option<at_engine::ScenarioReport> = None;
        for backend in backend_lineup() {
            let report = ConsensuslessEngine::new(
                EngineConfig::standard().with_backend(backend),
            )
            .run(&scenario);
            prop_assert_eq!(report.conflicts, 0, "{:?}", backend);
            prop_assert!(report.agreed, "{:?} diverged", backend);
            prop_assert!(report.supply_ok, "{:?} supply", backend);
            if let Some(reference) = &reference {
                prop_assert_eq!(
                    report.completed, reference.completed,
                    "{:?} vs bracha completions", backend
                );
                prop_assert_eq!(
                    report.balance_digest, reference.balance_digest,
                    "{:?} vs bracha balances", backend
                );
            } else {
                reference = Some(report);
            }
        }
    }
}
