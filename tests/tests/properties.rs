//! Property-based integration tests (proptest): invariants of the model,
//! the shared-memory objects, and the broadcast layer under randomized
//! inputs and schedules.

// Index-driven loops here mirror the per-process state arrays.
#![allow(clippy::needless_range_loop)]

use at_broadcast::bracha::{BrachaBroadcast, BrachaMsg};
use at_broadcast::types::Step;
use at_model::codec::{decode, encode};
use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId, SeqNo, Transfer};
use at_sharedmem::figure1::SnapshotAssetTransfer;
use at_sharedmem::harness::{assert_linearizable, run_uniform_workload, WorkloadConfig};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn transfer_strategy(n: u32) -> impl Strategy<Value = Transfer> {
    (0..n, 0..n, 0..1_000u64, 0..n, 1..50u64).prop_map(|(src, dst, x, orig, seq)| {
        Transfer::new(
            AccountId::new(src),
            AccountId::new(dst),
            Amount::new(x),
            ProcessId::new(orig),
            SeqNo::new(seq),
        )
    })
}

proptest! {
    /// Codec: every transfer round-trips bit-exactly.
    #[test]
    fn transfer_codec_roundtrip(tx in transfer_strategy(8)) {
        let bytes = encode(&tx);
        let back: Transfer = decode(&bytes).unwrap();
        prop_assert_eq!(tx, back);
    }

    /// Codec: TransferMsg with arbitrary dependency lists round-trips.
    #[test]
    fn transfer_msg_codec_roundtrip(
        tx in transfer_strategy(8),
        deps in prop::collection::vec(transfer_strategy(8), 0..10),
    ) {
        let msg = at_core::figure4::TransferMsg { transfer: tx, deps };
        let bytes = encode(&msg);
        let back: at_core::figure4::TransferMsg = decode(&bytes).unwrap();
        prop_assert_eq!(msg, back);
    }

    /// Spec: any sequence of transfer attempts conserves total supply and
    /// never produces a negative balance.
    #[test]
    fn ledger_conserves_supply(
        ops in prop::collection::vec(transfer_strategy(6), 0..60),
    ) {
        let mut ledger = Ledger::uniform(6, Amount::new(100));
        let supply = ledger.total_supply();
        for op in &ops {
            let _ = ledger.apply(op);
        }
        prop_assert_eq!(ledger.total_supply(), supply);
        for (_, balance) in ledger.iter() {
            prop_assert!(balance <= supply);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Figure 1 under randomized concurrent workloads is linearizable.
    /// (Bounded sizes keep the exhaustive checker fast; thread-spawning
    /// workloads run a reduced number of cases.)
    #[test]
    fn figure1_random_workloads_linearize(seed in 0u64..500) {
        let config = WorkloadConfig {
            processes: 3,
            ops_per_process: 4,
            initial_balance: Amount::new(10),
            max_amount: 7,
            read_percent: 35,
            seed,
        };
        let object = Arc::new(SnapshotAssetTransfer::wait_free_uniform(
            config.processes,
            config.initial_balance,
        ));
        let (history, initial) = run_uniform_workload(object, &config);
        assert_linearizable(&history, &initial);
    }

    /// Bracha broadcast: agreement and FIFO order hold under arbitrary
    /// network reordering (shuffled message queue).
    #[test]
    fn bracha_agreement_under_reordering(seed in 0u64..300) {
        let n = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut endpoints: Vec<BrachaBroadcast<u64>> = (0..n)
            .map(|i| BrachaBroadcast::new(ProcessId::new(i as u32), n))
            .collect();
        let mut inflight: Vec<(ProcessId, ProcessId, BrachaMsg<u64>)> = Vec::new();
        let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); n];

        // Two sources, two messages each.
        for (source, value) in [(0u32, 10u64), (0, 11), (2, 20), (2, 21)] {
            let mut step = Step::new();
            endpoints[source as usize].broadcast(value, &mut step);
            for out in step.outgoing {
                inflight.push((ProcessId::new(source), out.to, out.msg));
            }
        }
        while !inflight.is_empty() {
            inflight.shuffle(&mut rng);
            let (from, to, msg) = inflight.pop().unwrap();
            let mut step = Step::new();
            endpoints[to.as_usize()].on_message(from, msg, &mut step);
            for out in step.outgoing {
                inflight.push((to, out.to, out.msg));
            }
            delivered[to.as_usize()]
                .extend(step.deliveries.into_iter().map(|d| d.payload));
        }
        for view in &delivered {
            // Agreement + FIFO per source: 10 before 11, 20 before 21.
            let pos = |v: u64| view.iter().position(|&x| x == v).unwrap();
            prop_assert_eq!(view.len(), 4);
            prop_assert!(pos(10) < pos(11));
            prop_assert!(pos(20) < pos(21));
        }
    }

    /// The owner map's sharedness equals the maximum owner-set size, for
    /// arbitrary maps.
    #[test]
    fn owner_map_sharedness(assignments in prop::collection::vec((0..8u32, 0..8u32), 0..40)) {
        let mut owners = OwnerMap::new();
        let mut max_per_account = std::collections::HashMap::new();
        for (account, process) in &assignments {
            owners.add_owner(AccountId::new(*account), ProcessId::new(*process));
        }
        for account in owners.accounts() {
            max_per_account.insert(account, owners.owner_count(account));
        }
        let expected = max_per_account.values().copied().max().unwrap_or(0);
        prop_assert_eq!(owners.sharedness(), expected);
    }

    /// Ed25519 over random seeds and messages: sign/verify round-trips and
    /// any single-bit tamper of the message is rejected.
    #[test]
    fn ed25519_roundtrip_and_tamper(
        seed in prop::array::uniform32(any::<u8>()),
        message in prop::collection::vec(any::<u8>(), 1..64),
        flip in any::<u8>(),
    ) {
        let keypair = at_crypto::Keypair::from_seed(&seed);
        let signature = keypair.sign(&message);
        prop_assert!(keypair.public().verify(&message, &signature).is_ok());

        let mut tampered = message.clone();
        let index = (flip as usize) % tampered.len();
        tampered[index] ^= 1;
        prop_assert!(keypair.public().verify(&tampered, &signature).is_err());
    }

    /// The fast curve field multiplication agrees with the generic
    /// big-integer reference on random inputs.
    #[test]
    fn field_mul_matches_reference(
        a in prop::array::uniform4(any::<u64>()),
        b in prop::array::uniform4(any::<u64>()),
    ) {
        use at_crypto::bigint::U256;
        use at_crypto::field::{prime, FieldElement};
        let fast = FieldElement::from_le_bytes(&U256(a).to_le_bytes())
            .mul(FieldElement::from_le_bytes(&U256(b).to_le_bytes()))
            .reduce();
        let reference = U256(a).rem(prime()).mul_mod(U256(b).rem(prime()), prime());
        prop_assert_eq!(fast, reference);
    }

    /// Figure 4 state machine: a random interleaving of deliveries across
    /// processes never violates conservation or negative balances.
    #[test]
    fn figure4_random_delivery_order_converges(seed in 0u64..200) {
        let n = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut states: Vec<at_core::figure4::TransferState> = (0..n as u32)
            .map(|i| at_core::figure4::TransferState::new(ProcessId::new(i), n, Amount::new(50)))
            .collect();

        // Build a chain of funded transfers sequentially at the sources.
        let mut msgs = Vec::new();
        for round in 0..3 {
            for i in 0..n {
                let dest = AccountId::new(((i + round + 1) % n) as u32);
                if let Ok(msg) = states[i].submit(dest, Amount::new(5)) {
                    msgs.push((ProcessId::new(i as u32), msg));
                    // The source applies its own message immediately
                    // (self-delivery first is one valid ordering).
                    let (q, m) = msgs.last().unwrap().clone();
                    states[i].on_deliver(q, m);
                }
            }
        }
        // Deliver everything to everyone in random order (source order is
        // preserved per sender by retrying until accepted).
        for i in 0..n {
            let mut pending: Vec<_> = msgs.clone();
            pending.shuffle(&mut rng);
            let mut progress = true;
            while progress && !pending.is_empty() {
                progress = false;
                let mut remaining = Vec::new();
                for (q, m) in pending {
                    let before = states[i].applied_count();
                    states[i].on_deliver(q, m.clone());
                    if states[i].applied_count() > before {
                        progress = true;
                    } else {
                        remaining.push((q, m));
                    }
                }
                pending = remaining;
            }
        }
        let supply: u64 = (0..n as u32)
            .map(|j| states[0].observed_balance(AccountId::new(j)).units())
            .sum();
        prop_assert_eq!(supply, 50 * n as u64);
        for i in 1..n {
            for j in 0..n as u32 {
                prop_assert_eq!(
                    states[i].observed_balance(AccountId::new(j)),
                    states[0].observed_balance(AccountId::new(j))
                );
            }
        }
    }
}
