//! Integration tests for the message-passing system (experiment F4):
//! Figure 4 over both secure broadcasts in the simulator — convergence,
//! crash tolerance, causality, and linearizability of the successful
//! sub-history (property 1 of Definition 1).

use at_broadcast::auth::{EdAuth, NoAuth};
use at_broadcast::bracha::BrachaBroadcast;
use at_core::figure4::{TransferMsg, TransferState};
use at_core::replica::{ConsensuslessReplica, TransferBroadcast, TransferEvent};
use at_model::history::{History, Operation, Response};
use at_model::{AccountId, Amount, Ledger, OwnerMap, ProcessId, Transfer};
use at_net::{NetConfig, Simulation, VirtualTime};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

fn amt(x: u64) -> Amount {
    Amount::new(x)
}

fn bracha_system(
    n: usize,
    initial: u64,
    seed: u64,
) -> Simulation<ConsensuslessReplica<BrachaBroadcast<TransferMsg>>> {
    let replicas = (0..n as u32)
        .map(|i| ConsensuslessReplica::bracha(p(i), n, amt(initial)))
        .collect();
    Simulation::new(replicas, NetConfig::lan(seed))
}

/// Schedules a round-robin workload; returns (submissions, completions).
fn run_workload<B>(
    sim: &mut Simulation<ConsensuslessReplica<B>>,
    n: usize,
    waves: usize,
) -> Vec<Transfer>
where
    B: TransferBroadcast + 'static,
{
    for wave in 0..waves {
        for i in 0..n {
            let dest = a(((i + wave + 1) % n) as u32);
            sim.schedule(
                VirtualTime::from_millis((wave * 10) as u64),
                p(i as u32),
                move |replica, ctx| replica.submit(dest, amt(3), ctx),
            );
        }
    }
    assert!(sim.run_until_quiet(50_000_000));
    sim.take_events()
        .into_iter()
        .filter_map(|(_, _, e)| match e {
            TransferEvent::Completed { transfer } => Some(transfer),
            _ => None,
        })
        .collect()
}

#[test]
fn all_replicas_converge_to_identical_balances() {
    let n = 6;
    let mut sim = bracha_system(n, 100, 3);
    let completed = run_workload(&mut sim, n, 4);
    assert_eq!(completed.len(), n * 4);

    let reference: Vec<Amount> = (0..n as u32)
        .map(|j| sim.actor(p(0)).observed_balance(a(j)))
        .collect();
    for i in 1..n as u32 {
        let view: Vec<Amount> = (0..n as u32)
            .map(|j| sim.actor(p(i)).observed_balance(a(j)))
            .collect();
        assert_eq!(view, reference, "replica {i} diverged");
    }
    let total: Amount = reference.into_iter().sum();
    assert_eq!(total, amt(100 * n as u64));
}

/// Property 1 of Definition 1: the successful transfers of the execution
/// form a linearizable sub-history. We replay the completed transfers as
/// a sequential history in completion order and check it against `Δ`.
#[test]
fn successful_transfers_linearize() {
    let n = 4;
    let replicas = (0..n as u32)
        .map(|i| ConsensuslessReplica::bracha(p(i), n, amt(20)))
        .collect();
    let mut sim: Simulation<ConsensuslessReplica<BrachaBroadcast<TransferMsg>>> =
        Simulation::new(replicas, NetConfig::lan(17));

    // Interleaved, causally dependent transfers.
    sim.schedule(VirtualTime::ZERO, p(0), |replica, ctx| {
        replica.submit(a(1), amt(20), ctx);
    });
    sim.schedule(VirtualTime::from_millis(30), p(1), |replica, ctx| {
        replica.submit(a(2), amt(35), ctx); // needs p0's 20
    });
    sim.schedule(VirtualTime::from_millis(60), p(2), |replica, ctx| {
        replica.submit(a(3), amt(50), ctx); // needs p1's 35
    });
    assert!(sim.run_until_quiet(10_000_000));

    // Record the completions (at the originator) as a history in event
    // order and hand it to the checker.
    let mut history = History::new();
    let events = sim.take_events();
    for (_, _, event) in &events {
        if let TransferEvent::Completed { transfer } = event {
            let id = history.invoke(
                transfer.originator,
                Operation::Transfer {
                    source: transfer.source,
                    destination: transfer.destination,
                    amount: transfer.amount,
                },
            );
            history.respond(id, Response::Transfer(true));
        }
    }
    assert_eq!(history.op_count(), 3);
    let initial = Ledger::new(
        (0..n as u32).map(|i| (a(i), amt(20))),
        OwnerMap::one_account_per_process(n),
    );
    assert!(at_model::linearizable(&history, &initial).is_linearizable());
}

#[test]
fn echo_and_bracha_agree_on_final_state() {
    let n = 5;
    let waves = 3;

    let mut bracha = bracha_system(n, 60, 23);
    let completed_bracha = run_workload(&mut bracha, n, waves);

    let replicas = (0..n as u32)
        .map(|i| ConsensuslessReplica::echo(p(i), n, amt(60), NoAuth))
        .collect();
    let mut echo: Simulation<_> = Simulation::new(replicas, NetConfig::lan(23));
    let completed_echo = run_workload(&mut echo, n, waves);

    assert_eq!(completed_bracha.len(), completed_echo.len());
    for j in 0..n as u32 {
        assert_eq!(
            bracha.actor(p(0)).observed_balance(a(j)),
            echo.actor(p(0)).observed_balance(a(j)),
            "account {j}"
        );
    }
}

#[test]
fn real_signatures_end_to_end() {
    // Small system with actual Ed25519 signing in the echo broadcast.
    let n = 4;
    let auth = EdAuth::deterministic(n, 99);
    let replicas = (0..n as u32)
        .map(|i| ConsensuslessReplica::echo(p(i), n, amt(30), auth.clone()))
        .collect();
    let mut sim: Simulation<_> = Simulation::new(replicas, NetConfig::lan(2));
    sim.schedule(VirtualTime::ZERO, p(0), |replica, ctx| {
        replica.submit(a(3), amt(12), ctx);
    });
    assert!(sim.run_until_quiet(1_000_000));
    let completed = sim
        .take_events()
        .iter()
        .filter(|(_, _, e)| matches!(e, TransferEvent::Completed { .. }))
        .count();
    assert_eq!(completed, 1);
    for i in 0..n as u32 {
        assert_eq!(sim.actor(p(i)).observed_balance(a(3)), amt(42));
    }
}

#[test]
fn f_crashes_do_not_block_survivors() {
    let n = 7; // f = 2
    let mut sim = bracha_system(n, 100, 31);
    sim.crash(p(5));
    sim.crash(p(6));
    for i in 0..5u32 {
        sim.schedule(VirtualTime::ZERO, p(i), move |replica, ctx| {
            replica.submit(a((i + 1) % 5), amt(10), ctx);
        });
    }
    assert!(sim.run_until_quiet(10_000_000));
    let completed = sim
        .take_events()
        .iter()
        .filter(|(_, _, e)| matches!(e, TransferEvent::Completed { .. }))
        .count();
    assert_eq!(completed, 5);
}

#[test]
fn read_reflects_own_account_immediately() {
    // The paper's read: p's own view of its account includes incoming
    // deps as soon as they are applied locally.
    let mut states: Vec<TransferState> = (0..2u32)
        .map(|i| TransferState::new(p(i), 2, amt(10)))
        .collect();
    let msg = states[0].submit(a(1), amt(7)).unwrap();
    states[1].on_deliver(p(0), msg.clone());
    assert_eq!(states[1].read(a(1)), amt(17));
    // And p0's own outgoing debits immediately after self-delivery.
    states[0].on_deliver(p(0), msg);
    assert_eq!(states[0].read(a(0)), amt(3));
}

#[test]
fn deterministic_replay_of_whole_system() {
    let run = |seed: u64| {
        let n = 5;
        let mut sim = bracha_system(n, 40, seed);
        let completed = run_workload(&mut sim, n, 2);
        (completed.len(), sim.now(), sim.stats())
    };
    assert_eq!(run(77), run(77));
    let (c1, t1, _) = run(77);
    let (c2, t2, _) = run(78);
    assert_eq!(c1, c2);
    assert_ne!(t1, t2, "different seeds produce different schedules");
}
