//! End-to-end tests of the at-node runtime: real TCP loopback clusters
//! running the same sans-I/O replicas the simulator runs, driven over
//! the wire protocol by real clients.

use at_broadcast::auth::NoAuth;
use at_broadcast::bracha::BrachaBroadcast;
use at_broadcast::echo::EchoBroadcast;
use at_broadcast::SecureBroadcast;
use at_engine::replica::{EngineEvent, EnginePayload};
use at_engine::{EngineConfig, ShardedReplica, Workload};
use at_model::{AccountId, Amount, ProcessId};
use at_net::{Actor, Context, VirtualTime};
use at_node::{await_convergence, start_tcp_cluster, Client, NodeConfig, ResponseBody, TcpOptions};
use std::time::Duration;

type EchoNode = EchoBroadcast<EnginePayload, NoAuth>;

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

fn node_config() -> NodeConfig {
    // Sharded + window-batched: the production shape, with a short real
    // window so tests stay fast.
    NodeConfig::new(
        EngineConfig::sharded_batched(4, 16, VirtualTime::from_micros(500)),
        Amount::new(1_000),
    )
}

/// 4-node TCP cluster, signed-echo backend, mixed workload over real
/// sockets: all transfers commit, every replica converges to
/// byte-identical balances, the supply is conserved — and a
/// double-spending client's second transfer is rejected over the wire.
#[test]
fn tcp_cluster_converges_and_rejects_double_spend_over_the_wire() {
    let n = 4;
    let cluster = start_tcp_cluster(n, node_config(), TcpOptions::default(), |me| {
        EchoNode::new(me, n, NoAuth)
    })
    .expect("cluster");
    let mut cluster = cluster;

    // One real TCP client per node, driving the scenario subsystem's
    // mixed workload distribution (sink = account 2).
    let workload = Workload::Mixed {
        sink: a(2),
        percent_sink: 40,
    };
    let mut clients: Vec<Client> = cluster
        .client_addrs
        .iter()
        .map(|addr| Client::connect(*addr).expect("connect"))
        .collect();
    let waves = 8;
    let mut expected_commits = 0u64;
    for wave in 0..waves {
        for (i, client) in clients.iter_mut().enumerate() {
            if let Some(dest) = workload.destination(7, wave, i, n) {
                client
                    .submit_transfer(dest, Amount::new(3))
                    .expect("submit");
                expected_commits += 1;
            }
        }
    }

    // Every pipelined transfer is acknowledged as committed.
    let mut committed = 0u64;
    for client in &mut clients {
        while client.outstanding() > 0 {
            let response = client
                .recv_response(Duration::from_secs(20))
                .expect("io")
                .expect("ack before timeout");
            match response.body {
                ResponseBody::Committed { .. } => committed += 1,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }
    assert_eq!(committed, expected_commits);

    // All four replicas converge to byte-identical balances.
    let handles: Vec<_> = cluster.running().collect();
    let reports = await_convergence(&handles, Duration::from_secs(30)).expect("convergence");
    for report in &reports {
        assert_eq!(report.balances, reports[0].balances, "{:?}", report.node);
        assert_eq!(report.dropped_frames, 0);
        assert_eq!(report.malformed_frames, 0);
        let supply: u64 = report.balances.iter().map(|b| b.units()).sum();
        assert_eq!(supply, 1_000 * n as u64, "supply not conserved");
    }
    drop(handles);

    // Double spend over the wire: drain the full available balance, then
    // try to spend it again — admission (which reserves in-flight
    // amounts) must reject the second transfer.
    let mut spender = Client::connect(cluster.client_addrs[0]).expect("connect");
    let balance = spender
        .read_balance(a(0), Duration::from_secs(5))
        .expect("read");
    spender.submit_transfer(a(1), balance).expect("submit");
    spender.submit_transfer(a(3), balance).expect("submit");
    let mut outcomes = Vec::new();
    while spender.outstanding() > 0 {
        let response = spender
            .recv_response(Duration::from_secs(20))
            .expect("io")
            .expect("ack before timeout");
        outcomes.push(response);
    }
    outcomes.sort_by_key(|r| r.id);
    assert!(
        matches!(outcomes[0].body, ResponseBody::Committed { .. }),
        "first spend must commit: {outcomes:?}"
    );
    assert!(
        matches!(outcomes[1].body, ResponseBody::Rejected { .. }),
        "second spend must be rejected: {outcomes:?}"
    );

    cluster.stop_all();
}

/// Crash/restart: one node leaves mid-run, traffic continues without
/// it, and after a warm restart (the replica-restart model at-check
/// introduced on the simulator: state kept, missed messages replayed by
/// the peers' outboxes) it catches up and converges.
#[test]
fn tcp_node_restart_catches_up_and_converges() {
    let n = 4;
    let victim = 3usize;
    let mut cluster = start_tcp_cluster(n, node_config(), TcpOptions::default(), |me| {
        EchoNode::new(me, n, NoAuth)
    })
    .expect("cluster");

    let submit_wave = |cluster: &at_node::TcpCluster<EchoNode>, skip: Option<usize>, wave: u32| {
        for i in 0..n {
            if Some(i) == skip {
                continue;
            }
            if let Some(handle) = cluster.handles[i].as_ref() {
                let mut client = handle.local_client();
                client.submit_transfer(a(((i as u32) + wave + 1) % n as u32), Amount::new(2));
                // Ack consumption is not needed; the commit is observed
                // via reports.
            }
        }
    };

    // Phase 1: everyone participates.
    for wave in 0..4 {
        submit_wave(&cluster, None, wave);
    }
    let handles: Vec<_> = cluster.running().collect();
    await_convergence(&handles, Duration::from_secs(30)).expect("phase-1 convergence");
    drop(handles);

    // Phase 2: the victim leaves mid-run (warm stop); the rest keep
    // transferring. Their frames to the victim buffer in the outboxes.
    let replica = cluster.stop_node(victim);
    for wave in 4..8 {
        submit_wave(&cluster, Some(victim), wave);
    }
    let survivors: Vec<_> = cluster.running().collect();
    let reports = await_convergence(&survivors, Duration::from_secs(30))
        .expect("survivors must converge without the victim");
    let survivor_digest = reports[0].digest;
    drop(survivors);

    // Phase 3: restart from the warm replica. Peers reconnect, replay
    // everything the victim missed, and it catches up.
    cluster.restart_node(victim, replica).expect("restart");
    let handles: Vec<_> = cluster.running().collect();
    let reports =
        await_convergence(&handles, Duration::from_secs(30)).expect("restarted node must catch up");
    assert_eq!(reports.len(), n);
    assert_eq!(
        reports[victim].digest, survivor_digest,
        "restarted node did not reach the survivors' state"
    );
    for report in &reports {
        assert_eq!(report.balances, reports[0].balances);
        let supply: u64 = report.balances.iter().map(|b| b.units()).sum();
        assert_eq!(supply, 1_000 * n as u64);
    }
    drop(handles);

    // And the cluster still works: post-restart traffic commits
    // everywhere, including at the restarted node.
    for wave in 8..10 {
        submit_wave(&cluster, None, wave);
    }
    let handles: Vec<_> = cluster.running().collect();
    let reports =
        await_convergence(&handles, Duration::from_secs(30)).expect("post-restart convergence");
    for report in &reports {
        assert_eq!(report.balances, reports[0].balances);
    }
    drop(handles);
    cluster.stop_all();
}

/// Crash/warm-restart trace continuity: the trace epoch lives in
/// `NodeConfig` and survives a warm restart, so a restarted node's
/// *new* tracer (the old incarnation's ring dies with its loop) keeps
/// stamping on the shared cluster clock. Replayed broadcast frames
/// carry their original trace contexts, so the merger reconstructs
/// timelines that span the crash — with the downtime visible as a
/// gap annotation — and post-restart transfers trace end-to-end with
/// the restarted node participating.
#[test]
fn tcp_restart_traces_merge_across_incarnations() {
    use at_obs::{merge_traces, TraceConfig, TraceLog};
    let n = 4;
    let victim = 3usize;
    let config = node_config().with_trace(TraceConfig::always());
    let mut cluster = start_tcp_cluster(n, config, TcpOptions::default(), |me| {
        EchoNode::new(me, n, NoAuth)
    })
    .expect("cluster");

    let submit_at = |cluster: &at_node::TcpCluster<EchoNode>, i: usize, wave: u32| {
        if let Some(handle) = cluster.handles[i].as_ref() {
            let mut client = handle.local_client();
            client.submit_transfer(a(((i as u32) + wave + 1) % n as u32), Amount::new(1));
        }
    };

    // Phase 1: traffic with everyone up, then the victim warm-stops.
    for wave in 0..3 {
        for i in 0..n {
            submit_at(&cluster, i, wave);
        }
    }
    let handles: Vec<_> = cluster.running().collect();
    await_convergence(&handles, Duration::from_secs(30)).expect("phase-1 convergence");
    drop(handles);
    let replica = cluster.stop_node(victim);

    // Phase 2: survivors keep committing while the victim is down —
    // these transfers' traces are minted now, but the victim will only
    // record its deliveries after the restart replays the frames to it,
    // at least `downtime` later on the shared clock.
    for wave in 3..6 {
        for i in 0..n - 1 {
            submit_at(&cluster, i, wave);
        }
    }
    let survivors: Vec<_> = cluster.running().collect();
    await_convergence(&survivors, Duration::from_secs(30)).expect("survivors converge");
    drop(survivors);
    let downtime = Duration::from_millis(50);
    std::thread::sleep(downtime);

    // Phase 3: warm restart, catch-up, and one more traced wave with
    // the restarted node participating.
    cluster.restart_node(victim, replica).expect("restart");
    for wave in 6..8 {
        for i in 0..n {
            submit_at(&cluster, i, wave);
        }
    }
    let handles: Vec<_> = cluster.running().collect();
    await_convergence(&handles, Duration::from_secs(30)).expect("post-restart convergence");
    let logs: Vec<TraceLog> = handles
        .iter()
        .map(|h| h.try_trace(Duration::from_secs(5)).expect("trace scrape"))
        .collect();
    drop(handles);
    cluster.stop_all();

    assert!(
        logs.iter().all(|log| !log.events.is_empty()),
        "every node (the restarted incarnation included) must have recorded events"
    );
    let timelines = merge_traces(&logs);
    assert!(!timelines.is_empty(), "no merged timelines");
    // The restarted incarnation participates in post-restart timelines
    // on the shared clock.
    assert!(
        timelines
            .iter()
            .any(|t| { t.e2e_us.is_some() && t.events.iter().any(|e| e.node == victim as u32) }),
        "no complete timeline includes the restarted node"
    );
    // A phase-2 transfer delivered to the victim only via post-restart
    // replay spans the downtime: its merged timeline shows the stall as
    // a rendered gap annotation (downtime > the 10ms annotation bound).
    assert!(
        timelines.iter().any(|t| t.render().contains("gap")),
        "no timeline spanning the restart carries a gap annotation"
    );
}

/// Regression guard for the real-runtime delivery regime (the audit
/// behind wiring the event loop): remote protocol responses may reach a
/// sender *before* its own self-addressed SEND loops back — the
/// interleaving that once crashed `AccountOrderBroadcast` (fixed in the
/// at-check PR) and that a socket runtime produces routinely. Drive
/// replicas through the exact detached-context path the node uses and
/// deliver every remote message before any self-addressed one.
#[test]
fn remote_responses_may_overtake_self_loopback() {
    fn run<B, F>(make: F)
    where
        B: SecureBroadcast<EnginePayload>,
        F: Fn(ProcessId) -> B,
    {
        let n = 4;
        let config = EngineConfig::unsharded();
        let mut replicas: Vec<ShardedReplica<B>> = (0..n as u32)
            .map(|i| ShardedReplica::with_backend(p(i), n, Amount::new(100), config, make(p(i))))
            .collect();
        let mut events = Vec::new();

        // p0 submits; collect its outgoing messages.
        let mut ctx = Context::detached(VirtualTime::ZERO, p(0), n, &mut events);
        replicas[0].submit(a(1), Amount::new(25), &mut ctx);
        let outputs = ctx.into_outputs();

        // Deliver with self-addressed messages parked at the *back* of
        // the queue: every remote response overtakes the loopback.
        let mut queue: Vec<(ProcessId, ProcessId, B::Msg)> = Vec::new();
        for (to, msg) in outputs.outbox {
            queue.push((p(0), to, msg));
        }
        let mut guard = 0;
        while !queue.is_empty() {
            guard += 1;
            assert!(guard < 100_000, "delivery did not quiesce");
            // Pick the first entry whose destination differs from its
            // sender; fall back to self-deliveries only when nothing
            // else remains.
            let pos = queue
                .iter()
                .position(|(from, to, _)| from != to)
                .unwrap_or(0);
            let (from, to, msg) = queue.remove(pos);
            let mut ctx = Context::detached(VirtualTime::ZERO, to, n, &mut events);
            replicas[to.as_usize()].on_message(from, msg, &mut ctx);
            let outputs = ctx.into_outputs();
            for (next_to, next_msg) in outputs.outbox {
                queue.push((to, next_to, next_msg));
            }
        }

        // The transfer completed at p0 and applied everywhere.
        assert!(
            events
                .iter()
                .any(|(_, at, e)| *at == p(0) && matches!(e, EngineEvent::Completed { .. })),
            "transfer never completed under remote-first delivery"
        );
        for replica in &replicas {
            assert_eq!(replica.balance(a(0)), Amount::new(75));
            assert_eq!(replica.balance(a(1)), Amount::new(125));
        }
    }

    run(|me| BrachaBroadcast::<EnginePayload>::new(me, 4));
    run(|me| EchoBroadcast::<EnginePayload, NoAuth>::new(me, 4, NoAuth));
    run(|me| at_broadcast::AccountOrderBackend::<EnginePayload, NoAuth>::new(me, 4, NoAuth));
}
