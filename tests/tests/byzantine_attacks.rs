//! Adversarial integration tests: the safety guarantees of Definition 1
//! against actively malicious participants, with real cryptography where
//! the attack targets the signature layer.

use at_broadcast::auth::{Authenticator, EdAuth};
use at_broadcast::echo::{EchoBroadcast, EchoMsg};
use at_broadcast::types::Step;
use at_core::byzantine::{MaliciousReplica, Participant};
use at_core::figure4::TransferMsg;
use at_core::replica::TransferEvent;
use at_model::{AccountId, Amount, ProcessId, SeqNo, Transfer};
use at_net::{NetConfig, Simulation, VirtualTime};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

fn a(i: u32) -> AccountId {
    AccountId::new(i)
}

fn amt(x: u64) -> Amount {
    Amount::new(x)
}

/// f = 2 adversaries in a system of n = 7, both equivocating
/// concurrently with honest traffic: no double spend, honest liveness.
#[test]
fn two_adversaries_cannot_break_safety_or_liveness() {
    let n = 7;
    let actors: Vec<Participant> = (0..n as u32)
        .map(|i| {
            if i >= 5 {
                Participant::Equivocator(MaliciousReplica::new(p(i), n, amt(10)))
            } else {
                Participant::honest(p(i), n, amt(10))
            }
        })
        .collect();
    let mut sim = Simulation::new(actors, NetConfig::lan(41));

    for i in [5u32, 6] {
        sim.schedule(VirtualTime::ZERO, p(i), move |actor, ctx| {
            if let Participant::Equivocator(inner) = actor {
                inner.equivocate((a(0), amt(10)), (a(1), amt(10)), ctx);
            }
        });
    }
    for i in 0..5u32 {
        sim.schedule(VirtualTime::ZERO, p(i), move |actor, ctx| {
            if let Participant::Honest(replica) = actor {
                replica.submit(a((i + 1) % 5), amt(4), ctx);
            }
        });
    }
    assert!(sim.run_until_quiet(10_000_000));

    let events = sim.take_events();
    let completed = events
        .iter()
        .filter(|(_, _, e)| matches!(e, TransferEvent::Completed { .. }))
        .count();
    assert_eq!(completed, 5, "all honest transfers completed");

    // Across honest replicas: each adversary account debited at most once.
    for i in 0..5u32 {
        for attacker in [5u32, 6] {
            let balance = sim.actor(p(i)).read(a(attacker));
            assert!(
                balance == amt(10) || balance == amt(0),
                "partial/double spend visible at replica {i}: {balance}"
            );
        }
        // Conservation: honest accounts were credited by at most one leg
        // of each equivocation.
        let total: u64 = (0..n as u32)
            .map(|j| sim.actor(p(i)).read(a(j)).units())
            .sum();
        assert!(total <= 10 * n as u64);
    }
}

/// A forged Ed25519 signature on a SEND is rejected before any protocol
/// state is created: the attacker cannot impersonate another owner.
#[test]
fn signature_forgery_is_rejected() {
    let n = 4;
    let auth = EdAuth::deterministic(n, 5);
    let mut victim_endpoint: EchoBroadcast<TransferMsg, EdAuth> =
        EchoBroadcast::new(p(1), n, auth.clone());

    // p3 crafts a transfer debiting p0's account and signs it with its
    // *own* key (it does not have p0's).
    let forged_payload = TransferMsg {
        transfer: Transfer::new(a(0), a(3), amt(10), p(0), SeqNo::new(1)),
        deps: vec![],
    };
    let bogus_sig = auth.sign(p(3), b"anything");
    let mut step = Step::new();
    victim_endpoint.on_message(
        p(3),
        EchoMsg::Send {
            seq: SeqNo::new(1),
            payload: forged_payload,
            sig: bogus_sig,
        },
        &mut step,
    );
    assert!(step.outgoing.is_empty(), "no echo for forged signature");
    assert!(step.deliveries.is_empty());
    assert_eq!(victim_endpoint.delivered_count(), 0);
}

/// Runs a real signed-echo broadcast among `n` endpoints and returns the
/// sender's genuine FINAL message (payload + echo-quorum certificate) —
/// the raw material for the certificate-tampering tests below.
fn genuine_final(n: usize, auth: &EdAuth, payload: u64) -> EchoMsg<u64, at_crypto::Signature> {
    let mut endpoints: Vec<EchoBroadcast<u64, EdAuth>> = (0..n as u32)
        .map(|i| EchoBroadcast::new(p(i), n, auth.clone()))
        .collect();
    let mut step = Step::new();
    endpoints[0].broadcast(payload, &mut step);
    let sends: Vec<_> = step.outgoing;
    // Deliver the SENDs; route the echo shares back to the sender until
    // its FINAL materialises.
    let mut echoes = Vec::new();
    for out in sends {
        let mut reply = Step::new();
        endpoints[out.to.as_usize()].on_message(p(0), out.msg, &mut reply);
        echoes.extend(reply.outgoing.into_iter().map(|e| (out.to, e)));
    }
    for (from, echo) in echoes {
        let mut reply = Step::new();
        endpoints[0].on_message(from, echo.msg, &mut reply);
        for out in reply.outgoing {
            if matches!(out.msg, EchoMsg::Final { .. }) {
                return out.msg;
            }
        }
    }
    panic!("quorum of genuine echoes must produce a FINAL");
}

/// The satellite requirement: a forged or truncated echo-quorum
/// certificate — flipped share bits, a reattributed signer, a sub-quorum
/// or duplicate-padded certificate, a swapped payload — must be rejected
/// by `EchoBroadcast` delivery under real Ed25519 authentication, while
/// the untampered certificate delivers.
#[test]
fn tampered_echo_quorum_certificates_are_rejected() {
    let n = 4;
    let auth = EdAuth::deterministic(n, 7);
    let EchoMsg::Final {
        source,
        seq,
        payload,
        sig,
        certificate,
    } = genuine_final(n, &auth, 424_242)
    else {
        panic!("genuine_final returns a FINAL");
    };
    assert!(certificate.len() >= 3, "quorum certificate collected");

    // Each tampering attempt is delivered to a fresh victim endpoint; a
    // delivery (or any state change) means the forgery landed.
    let attempt = |label: &str, msg: EchoMsg<u64, at_crypto::Signature>| -> usize {
        let mut victim: EchoBroadcast<u64, EdAuth> = EchoBroadcast::new(p(1), n, auth.clone());
        let mut step = Step::new();
        victim.on_message(p(0), msg, &mut step);
        assert_eq!(
            victim.delivered_count(),
            step.deliveries.len(),
            "{label}: inconsistent delivery bookkeeping"
        );
        step.deliveries.len()
    };

    // Flipped share: corrupt one bit of the first share's signature.
    let mut flipped = certificate.clone();
    let mut bytes = flipped[0].1.to_bytes();
    bytes[17] ^= 0x40;
    flipped[0].1 = at_crypto::Signature::from_bytes(&bytes);
    assert_eq!(
        attempt(
            "flipped share",
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate: flipped,
            }
        ),
        0
    );

    // Wrong signer: reattribute a genuine share to a different process.
    let mut reattributed = certificate.clone();
    let stolen = reattributed[0].1;
    let victim_signer = reattributed[1].0;
    reattributed[0] = (victim_signer, stolen);
    assert_eq!(
        attempt(
            "wrong signer",
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate: reattributed,
            }
        ),
        0
    );

    // Sub-quorum: truncate below the echo quorum.
    let truncated: Vec<_> = certificate.iter().take(2).cloned().collect();
    assert_eq!(
        attempt(
            "truncated certificate",
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate: truncated,
            }
        ),
        0
    );

    // Sub-quorum padded with duplicates of one genuine share: distinct
    // signers still fall short.
    let padded = vec![certificate[0], certificate[0], certificate[0]];
    assert_eq!(
        attempt(
            "duplicate-padded certificate",
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate: padded,
            }
        ),
        0
    );

    // Swapped payload: the certificate covers the original digest only.
    assert_eq!(
        attempt(
            "swapped payload",
            EchoMsg::Final {
                source,
                seq,
                payload: payload + 1,
                sig,
                certificate: certificate.clone(),
            }
        ),
        0
    );

    // Control: the intact FINAL delivers exactly once.
    assert_eq!(
        attempt(
            "intact certificate",
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate,
            }
        ),
        1
    );
}

/// Batched certificate verification under attack: the random-linear-
/// combination check fails closed, and the serial fallback attributes
/// the exact tampered shares — so a certificate carrying a genuine
/// quorum *plus* corrupt padding still delivers (the attack gains
/// nothing), while tampering that eats into the quorum is rejected.
#[test]
fn batched_certificate_fallback_attributes_and_tolerates_corrupt_padding() {
    let n = 4;
    let auth = EdAuth::deterministic(n, 11);
    let EchoMsg::Final {
        source,
        seq,
        payload,
        sig,
        certificate,
    } = genuine_final(n, &auth, 99_999)
    else {
        panic!("genuine_final returns a FINAL");
    };
    let quorum = certificate.len();
    assert!(quorum >= 3);

    let attempt = |label: &str, cert: Vec<(ProcessId, at_crypto::Signature)>| -> usize {
        let mut victim: EchoBroadcast<u64, EdAuth> = EchoBroadcast::new(p(1), n, auth.clone());
        let mut step = Step::new();
        victim.on_message(
            p(0),
            EchoMsg::Final {
                source,
                seq,
                payload,
                sig,
                certificate: cert,
            },
            &mut step,
        );
        assert_eq!(
            victim.delivered_count(),
            step.deliveries.len(),
            "{label}: inconsistent delivery bookkeeping"
        );
        step.deliveries.len()
    };

    // A genuine quorum plus one corrupt share appended: the batch check
    // fails, the fallback attributes exactly the padding, and the
    // surviving quorum still delivers.
    let mut padded = certificate.clone();
    let mut corrupt = padded[0].1.to_bytes();
    corrupt[40] ^= 0x08;
    padded.push((padded[0].0, at_crypto::Signature::from_bytes(&corrupt)));
    assert_eq!(
        attempt("corrupt padding beyond quorum", padded),
        1,
        "corrupt padding must not invalidate a genuine quorum"
    );

    // Two shares tampered inside the quorum: attribution removes both
    // and the remainder falls short — no delivery.
    let mut double = certificate.clone();
    for index in [0, 1] {
        let mut bytes = double[index].1.to_bytes();
        bytes[33] ^= 0x80;
        double[index].1 = at_crypto::Signature::from_bytes(&bytes);
    }
    assert_eq!(attempt("two tampered shares", double), 0);

    // Direct attribution check on the authenticator: tamper shares 0
    // and 2 of a 4-share batch, expect exactly those indices back.
    let messages: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 16]).collect();
    let sigs: Vec<at_crypto::Signature> = (0..n)
        .map(|i| auth.sign(p(i as u32), &messages[i]))
        .collect();
    let mut items: Vec<at_broadcast::BatchVerifyItem<'_, at_crypto::Signature>> = (0..n)
        .map(|i| at_broadcast::BatchVerifyItem {
            signer: p(i as u32),
            bytes: messages[i].as_slice(),
            sig: &sigs[i],
        })
        .collect();
    assert_eq!(auth.verify_batch(&items), Ok(()));
    items[0].bytes = b"swapped payload";
    items[2].signer = p(3);
    assert_eq!(auth.verify_batch(&items), Err(vec![0, 2]));
}

/// Replayed SENDs (valid signature, old sequence number) do not cause
/// double application: the Figure 4 well-formedness check (line 10)
/// accepts each sequence number exactly once.
#[test]
fn replay_attack_is_idempotent() {
    let n = 3;
    let mut states: Vec<at_core::figure4::TransferState> = (0..n as u32)
        .map(|i| at_core::figure4::TransferState::new(p(i), n, amt(10)))
        .collect();
    let msg = states[0].submit(a(1), amt(4)).unwrap();
    // First delivery applies...
    assert_eq!(states[1].on_deliver(p(0), msg.clone()).len(), 1);
    // ...replays do nothing.
    for _ in 0..5 {
        assert!(states[1].on_deliver(p(0), msg.clone()).is_empty());
    }
    assert_eq!(states[1].observed_balance(a(1)), amt(14));
}

/// An adversary that floods with future sequence numbers cannot make
/// honest processes skip ahead.
#[test]
fn sequence_gap_flood_is_buffered_not_applied() {
    let n = 3;
    let mut victim = at_core::figure4::TransferState::new(p(1), n, amt(100));
    for seq in 5..25u64 {
        let msg = TransferMsg {
            transfer: Transfer::new(a(0), a(1), amt(1), p(0), SeqNo::new(seq)),
            deps: vec![],
        };
        assert!(victim.on_deliver(p(0), msg).is_empty());
    }
    assert_eq!(victim.observed_balance(a(1)), amt(100));
    assert_eq!(victim.validated_seq(p(0)), SeqNo::ZERO);
}

/// The overspender attack at network scale: an adversary broadcasts a
/// protocol-conformant transfer for money it does not have; every honest
/// process buffers it forever and the system keeps running.
#[test]
fn network_wide_overspend_is_inert() {
    let n = 4;
    let actors: Vec<Participant> = (0..n as u32)
        .map(|i| {
            if i == 3 {
                Participant::Overspender(MaliciousReplica::new(p(i), n, amt(10)))
            } else {
                Participant::honest(p(i), n, amt(10))
            }
        })
        .collect();
    let mut sim = Simulation::new(actors, NetConfig::lan(43));
    sim.schedule(VirtualTime::ZERO, p(3), |actor, ctx| {
        if let Participant::Overspender(inner) = actor {
            inner.overspend(a(0), amt(10_000), ctx);
        }
    });
    // Honest traffic interleaved before and after.
    sim.schedule(VirtualTime::from_millis(1), p(0), |actor, ctx| {
        if let Participant::Honest(replica) = actor {
            replica.submit(a(1), amt(5), ctx);
        }
    });
    assert!(sim.run_until_quiet(10_000_000));
    let events = sim.take_events();
    let applied: Vec<&Transfer> = events
        .iter()
        .filter_map(|(_, _, e)| match e {
            TransferEvent::Applied { transfer } => Some(transfer),
            _ => None,
        })
        .collect();
    assert!(applied.iter().all(|t| t.amount == amt(5)));
    for i in 0..3u32 {
        // Account 0: initial 10, honest spend of 5, and — crucially — no
        // 10,000-unit credit from the attacker's unfunded transfer.
        assert_eq!(sim.actor(p(i)).read(a(0)), amt(5));
        // The attacker's account is untouched (its overdraft never applied).
        assert_eq!(sim.actor(p(i)).read(a(3)), amt(10));
    }
}
