//! Integration-test support crate.
//!
//! The actual integration tests live in `tests/tests/*.rs` and span the
//! whole workspace: shared-memory algorithms checked by the
//! linearizability checker, message-passing systems under Byzantine
//! attack, and cross-system agreement scenarios.

#![forbid(unsafe_code)]
